"""Durable campaign service: crash-safe queue, leases, admission, HTTP API.

The serving layer the roadmap's "simulation-as-a-service" arc builds on
(see ARCHITECTURE.md "Campaign service").  The pieces, bottom up:

* :mod:`repro.service.journal` — checksummed, fsync'd append-only
  write-ahead journal; replay-on-start recovery, torn tails truncated.
* :mod:`repro.service.queue` — the WAL-backed job state machine
  (``pending → leased → done | failed | cancelled``) with lease-based
  ownership, idempotent dedup by config fingerprint, priority scheduling,
  bounded-depth/quota admission control, a per-config circuit breaker and
  low-priority load shedding.
* :mod:`repro.service.daemon` — :class:`CampaignService`: executor
  threads over the existing runner stack, housekeeping, graceful shutdown.
* :mod:`repro.service.http` — the stdlib HTTP JSON API.
* :mod:`repro.service.cli` — ``python -m repro.service`` daemon + client.

The core guarantee, enforced end to end by kill ``-9`` recovery tests: an
acknowledged job is never lost and never double-runs — the journal commit
is the acknowledgement, replay rebuilds the queue, and the resuming
checkpoint store makes any re-execution a byte-identical cache hit.
"""

from __future__ import annotations

from .daemon import CampaignService, build_service
from .http import make_server, preset_configs, serve_in_thread
from .journal import Journal, ReplayStats
from .queue import (
    CANCELLED,
    CRASH_ERROR_TYPES,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    PRIORITIES,
    Job,
    JobQueue,
    QueueCounters,
)

__all__ = [
    "CANCELLED",
    "CRASH_ERROR_TYPES",
    "CampaignService",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "Journal",
    "LEASED",
    "PENDING",
    "PRIORITIES",
    "QueueCounters",
    "ReplayStats",
    "build_service",
    "make_server",
    "preset_configs",
    "serve_in_thread",
]
