"""``python -m repro.service.fsck`` — offline crash-consistency checker.

Reconciles the three persistence layers a campaign service leaves on disk —
the write-ahead journal, the checkpoint store, and any flight-recorder
dumps — against the service's invariants:

* **No acked job lost** — every journal-``done`` job has a present,
  readable, fingerprint-matching checkpoint (the payload a client was
  promised).
* **No duplicate results** — at most one non-failed/cancelled job per
  dedup key ``(fingerprint, workload, n_instrs)``.
* **No orphan leases** — a ``leased`` job in a journal nobody is serving
  belongs to a dead daemon (recoverable: startup replay reclaims it).
* **Journal integrity** — every record decodes (CRC + length + JSON) and
  replays to a valid state transition; a torn *tail* is expected crash
  debris, anything else is corruption.
* **Store hygiene** — checkpoint files parse, carry the right schema
  version, and match the fingerprint their name claims; no stray
  ``*.tmp`` residue from interrupted atomic writes.

Check mode is strictly **read-only** (it uses
:func:`repro.service.journal.scan_journal` and
:func:`repro.service.queue.replay_state`, never the mutating replay), so
it can run against a crashed state dir without disturbing evidence.

``--repair`` quarantines and rebuilds: the torn journal tail is truncated
(preserved in a ``*.torn`` sidecar), invalid records are dropped, orphan
leases are reclaimed, ``done`` jobs whose checkpoint is missing or corrupt
are demoted back to ``pending`` (their deterministic re-run produces a
byte-identical payload, so the client-visible contract survives), corrupt
checkpoints and flight dumps are renamed ``*.corrupt``, tmp residue is
deleted, and the journal is compacted from the repaired state.  Repair
refuses to run while the state dir's ready file names a live daemon.

Exit codes: 0 clean (or repaired to clean); 1 errors found (or repair left
errors); 2 usage / refused (live daemon).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..runner.store import ResultStore, _safe
from .journal import Journal, scan_journal
from .queue import CANCELLED, DONE, FAILED, LEASED, PENDING, Job, replay_state

READY_FILE = "service.json"

EXIT_OK = 0
EXIT_ERRORS = 1
EXIT_REFUSED = 2


@dataclass
class Finding:
    """One fsck observation: an invariant violation or recoverable debris."""

    severity: str   #: "error" (invariant broken) or "warning" (recoverable)
    code: str       #: stable machine-readable kind, e.g. "done-no-checkpoint"
    message: str
    path: str | None = None

    def to_dict(self) -> dict:
        return {
            "severity": self.severity, "code": self.code,
            "message": self.message, "path": self.path,
        }


@dataclass
class FsckReport:
    """Everything one check (or check-after-repair) pass found."""

    findings: list[Finding] = field(default_factory=list)
    checked: dict = field(default_factory=dict)
    repairs: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, code: str, message: str,
            path: str | Path | None = None) -> None:
        self.findings.append(
            Finding(severity, code, message, str(path) if path else None)
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "checked": self.checked,
            "findings": [f.to_dict() for f in self.findings],
            "repairs": list(self.repairs),
        }


def _checkpoint_path(checkpoint_dir: Path, job: Job) -> Path:
    """The store path a job's checkpoint must live at (mirrors
    :meth:`ResultStore._path`, keyed from journal fields alone).

    Jobs journaled with a workload fingerprint use the current
    fingerprint-suffixed stem; legacy jobs (empty fingerprint field) use
    the old name-keyed stem.
    """
    stem = (
        f"{_safe(job.config_name)}--{_safe(job.workload)}"
        f"--{job.n_instrs}--{job.fingerprint[:12]}"
    )
    if job.workload_fingerprint:
        stem += f"--{job.workload_fingerprint[:12]}"
    return checkpoint_dir / f"{stem}.json"


def _daemon_pid(state_dir: Path) -> int | None:
    """The live daemon's pid per the ready file, or ``None``."""
    ready = state_dir / READY_FILE
    if not ready.exists():
        return None
    try:
        pid = json.loads(ready.read_text()).get("pid")
    except (OSError, json.JSONDecodeError, AttributeError):
        return None
    if not isinstance(pid, int):
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return None
    except PermissionError:
        return pid  # exists, owned by someone else
    except OSError:
        return None
    return pid


# ------------------------------------------------------------------ checking


def check_state_dir(state_dir: str | Path) -> FsckReport:
    """Read-only reconciliation of one service state directory."""
    state_dir = Path(state_dir)
    journal_path = state_dir / "journal.wal"
    checkpoint_dir = state_dir / "ckpt"
    report = FsckReport()

    pid = _daemon_pid(state_dir)
    if pid is not None:
        report.add(
            "warning", "daemon-alive",
            f"ready file names live pid {pid}; state is in flux "
            f"(and --repair will refuse)",
            state_dir / READY_FILE,
        )

    # --- journal: decode + replay ----------------------------------------
    if not journal_path.exists():
        report.add(
            "warning", "journal-missing",
            "no journal.wal (never served, or state dir is wrong)",
            journal_path,
        )
        records: list[dict] = []
    else:
        records, stats = scan_journal(journal_path)
        report.checked["journal_records"] = stats.records
        if stats.torn_bytes:
            report.add(
                "warning", "journal-torn-tail",
                f"{stats.torn_bytes} torn/corrupt tail bytes after "
                f"{stats.records} committed records "
                f"({stats.errors[-1] if stats.errors else 'undecodable'}) — "
                f"expected crash debris; startup replay or --repair "
                f"truncates it",
                journal_path,
            )
    jobs, by_key, _breakers, replay_errors = replay_state(records)
    report.checked["jobs"] = len(jobs)
    for error in replay_errors:
        report.add(
            "error", "journal-invalid-record",
            f"committed record does not replay: {error}",
            journal_path,
        )

    # --- queue invariants -------------------------------------------------
    for job in jobs.values():
        if job.state == LEASED:
            report.add(
                "warning", "orphan-lease",
                f"job {job.job_id} is leased by {job.lease_owner!r} but no "
                f"daemon is serving this journal; startup replay or "
                f"--repair reclaims it to pending",
            )
    live_by_key: dict = {}
    for job in jobs.values():
        if job.state in (FAILED, CANCELLED):
            continue
        live_by_key.setdefault(job.key, []).append(job)
    for key, holders in sorted(live_by_key.items()):
        # A degraded quick estimate and a fresh full-length run legally
        # coexist on one key: submit never dedups a full-length request
        # against a clamped estimate.  Duplicates are only jobs with the
        # same degraded-ness.
        for degraded in (False, True):
            same = [j for j in holders if j.degraded == degraded]
            if len(same) > 1:
                ids = ", ".join(sorted(j.job_id for j in same))
                report.add(
                    "error", "dedup-duplicate",
                    f"{len(same)} live {'degraded ' if degraded else ''}jobs "
                    f"({ids}) share dedup key "
                    f"{key[0][:12]}/{key[1]}/{key[2]} — duplicate results "
                    f"possible",
                )
        index_id = by_key.get(key)
        if index_id is not None and all(j.job_id != index_id for j in holders):
            report.add(
                "error", "dedup-index-stale",
                f"dedup index points key {key[0][:12]}/{key[1]}/{key[2]} "
                f"at {index_id}, which is not a live holder",
            )

    # --- WAL <-> checkpoint store ----------------------------------------
    store = ResultStore(checkpoint_dir, resume=True)
    done_checked = 0
    for job in jobs.values():
        if job.state != DONE:
            continue
        done_checked += 1
        if job.cached and (job.cache_provenance or {}).get("near_hit"):
            # Near-cached jobs have no checkpoint of their own: the
            # payload is served from the result cache's *source* entry
            # (the provenance names it), never from this job's store key.
            continue
        path = _checkpoint_path(checkpoint_dir, job)
        if not path.exists():
            report.add(
                "error", "done-no-checkpoint",
                f"job {job.job_id} is journal-done but its checkpoint is "
                f"missing — an acknowledged result would 503; --repair "
                f"demotes it to pending (the deterministic re-run restores "
                f"the identical payload)",
                path,
            )
            continue
        try:
            store._read_checkpoint(path, expected_fingerprint=job.fingerprint)
        except Exception as exc:
            report.add(
                "error", "done-corrupt-checkpoint",
                f"job {job.job_id}'s checkpoint fails validation: {exc}",
                path,
            )
    report.checked["done_jobs"] = done_checked

    # --- store hygiene ----------------------------------------------------
    swept = 0
    if checkpoint_dir.is_dir():
        for path in sorted(checkpoint_dir.iterdir()):
            if path.name.endswith(".tmp"):
                report.add(
                    "warning", "tmp-residue",
                    "interrupted atomic write left a temp file; --repair "
                    "deletes it",
                    path,
                )
                continue
            if ".corrupt" in path.suffixes or ".corrupt" in path.name:
                continue  # already quarantined by a previous run/resume
            if path.suffix != ".json":
                continue
            swept += 1
            try:
                payload = json.loads(path.read_text())
                fp = payload["fingerprint"]
                store._read_checkpoint(path, expected_fingerprint=fp)
            except Exception as exc:
                report.add(
                    "error", "checkpoint-corrupt",
                    f"checkpoint fails validation: {exc}",
                    path,
                )
                continue
            if fp[:12] not in path.name:
                report.add(
                    "warning", "checkpoint-misnamed",
                    f"file name does not carry its own fingerprint "
                    f"{fp[:12]} (renamed by hand?)",
                    path,
                )
    report.checked["checkpoints"] = swept

    # --- flight-recorder dumps -------------------------------------------
    dumps = 0
    for path in sorted(state_dir.glob("flightrec-*.jsonl")):
        if ".corrupt" in path.name:
            continue
        dumps += 1
        try:
            lines = path.read_text().splitlines()
        except OSError as exc:
            report.add(
                "warning", "flight-dump-corrupt",
                f"dump is unreadable: {exc}; --repair quarantines it", path,
            )
            continue
        for i, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError as exc:
                report.add(
                    "warning", "flight-dump-corrupt",
                    f"dump is not valid JSONL (line {i}): {exc}; --repair "
                    f"quarantines it",
                    path,
                )
                break
    report.checked["flight_dumps"] = dumps
    return report


# ------------------------------------------------------------------ repairing


def repair_state_dir(state_dir: str | Path) -> FsckReport:
    """Quarantine-and-rebuild repair, then a fresh check of the result.

    Raises :class:`RuntimeError` if the state dir's ready file names a
    live daemon (repairing under a writer would corrupt, not repair).
    """
    state_dir = Path(state_dir)
    journal_path = state_dir / "journal.wal"
    checkpoint_dir = state_dir / "ckpt"
    pid = _daemon_pid(state_dir)
    if pid is not None:
        raise RuntimeError(
            f"refusing to repair {state_dir}: ready file names live daemon "
            f"pid {pid} (stop it first)"
        )
    repairs: list[str] = []

    # 1. Journal: truncate any torn tail (sidecar preserved), drop records
    #    that do not replay, reclaim orphan leases, demote acked jobs whose
    #    checkpoint is gone, then rewrite compacted.
    if journal_path.exists():
        journal = Journal(journal_path)
        records, stats = journal.replay()
        if stats.torn_bytes:
            repairs.append(
                f"truncated {stats.torn_bytes} torn journal bytes "
                f"(sidecar: {stats.torn_sidecar})"
            )
        jobs, _by_key, breakers, replay_errors = replay_state(records)
        if replay_errors:
            repairs.append(
                f"dropped {len(replay_errors)} journal record(s) that did "
                f"not replay"
            )
        store = ResultStore(checkpoint_dir, resume=True)
        for job in jobs.values():
            if job.state == LEASED:
                job.state = PENDING
                job.lease_owner = None
                job.lease_expires_at = None
                repairs.append(f"reclaimed orphan lease on {job.job_id}")
            elif job.state == DONE:
                path = _checkpoint_path(checkpoint_dir, job)
                valid = False
                if path.exists():
                    try:
                        store._read_checkpoint(
                            path, expected_fingerprint=job.fingerprint
                        )
                        valid = True
                    except Exception:
                        valid = False
                if not valid:
                    job.state = PENDING
                    job.summary = None
                    job.finished_at = None
                    job.lease_owner = None
                    job.lease_expires_at = None
                    repairs.append(
                        f"demoted {job.job_id} to pending (checkpoint "
                        f"missing/corrupt; deterministic re-run restores "
                        f"the identical payload)"
                    )
        payloads = [
            {"op": "job", "job": job.to_dict()}
            for job in sorted(jobs.values(), key=lambda j: j.seq)
        ]
        payloads += [
            {"op": "breaker", "fingerprint": fp, **breaker.to_dict()}
            for fp, breaker in breakers.items()
            if breaker.failures or breaker.opened_at is not None
        ]
        journal.rewrite(payloads)
        journal.close()
        repairs.append(
            f"rewrote journal: {len(payloads)} compacted record(s)"
        )

    # 2. Store: quarantine corrupt checkpoints, delete tmp residue.
    if checkpoint_dir.is_dir():
        store = ResultStore(checkpoint_dir, resume=True)
        for path in sorted(checkpoint_dir.iterdir()):
            if path.name.endswith(".tmp"):
                path.unlink(missing_ok=True)
                repairs.append(f"deleted tmp residue {path.name}")
                continue
            if ".corrupt" in path.name or path.suffix != ".json":
                continue
            try:
                payload = json.loads(path.read_text())
                store._read_checkpoint(
                    path, expected_fingerprint=payload["fingerprint"]
                )
            except Exception:
                target = _quarantine_name(path)
                os.replace(path, target)
                repairs.append(f"quarantined {path.name} -> {target.name}")

    # 3. Flight dumps: quarantine unparsable ones.
    for path in sorted(state_dir.glob("flightrec-*.jsonl")):
        if ".corrupt" in path.name:
            continue
        try:
            for line in path.read_text().splitlines():
                if line.strip():
                    json.loads(line)
        except (OSError, json.JSONDecodeError):
            target = _quarantine_name(path)
            os.replace(path, target)
            repairs.append(f"quarantined {path.name} -> {target.name}")

    report = check_state_dir(state_dir)
    report.repairs = repairs
    return report


def _quarantine_name(path: Path) -> Path:
    target = path.with_suffix(path.suffix + ".corrupt")
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_suffix(f"{path.suffix}.corrupt.{serial}")
    return target


# ----------------------------------------------------------------------- CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.fsck",
        description="Offline crash-consistency check for a service state dir "
                    "(WAL <-> checkpoint store <-> flight dumps)",
    )
    parser.add_argument(
        "state_dir",
        help="the daemon's state directory (journal.wal + ckpt/)",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="quarantine and rebuild instead of only reporting "
             "(refused while a daemon is live)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report on stdout",
    )
    args = parser.parse_args(argv)

    state_dir = Path(args.state_dir)
    if not state_dir.is_dir():
        print(f"fsck: {state_dir} is not a directory", file=sys.stderr)
        return EXIT_REFUSED
    if args.repair:
        try:
            report = repair_state_dir(state_dir)
        except RuntimeError as exc:
            print(f"fsck: {exc}", file=sys.stderr)
            return EXIT_REFUSED
    else:
        report = check_state_dir(state_dir)

    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for repair in report.repairs:
            print(f"repaired: {repair}")
        for finding in report.findings:
            location = f" [{finding.path}]" if finding.path else ""
            print(f"{finding.severity}: {finding.code}: "
                  f"{finding.message}{location}")
        checked = ", ".join(f"{k}={v}" for k, v in report.checked.items())
        verdict = "clean" if report.ok else f"{len(report.errors)} error(s)"
        print(f"fsck {state_dir}: {verdict} "
              f"({len(report.warnings)} warning(s); {checked})")
    return EXIT_OK if report.ok else EXIT_ERRORS


if __name__ == "__main__":
    sys.exit(main())
