"""``python -m repro.service`` — daemon and client command line.

Server::

    python -m repro.service serve STATE_DIR [--host H] [--port P]
        [--workers N] [--isolation thread|process] [--timeout S]
        [--retries N] [--max-rss-mb M]
        [--max-depth N] [--quota N] [--lease-s S] [--max-attempts N]
        [--shed-watermark F] [--shed-n-instrs N]
        [--breaker-threshold N] [--breaker-cooldown-s S]
        [--no-fsync] [observability flags]

``STATE_DIR`` holds everything the service owns: ``journal.wal`` (the
write-ahead journal), ``ckpt/`` (the result checkpoint store) and
``service.json`` (a ready file with ``{pid, host, port, url}``, written
atomically once the socket is bound — scripts wait on it instead of
parsing logs).  Restarting after *any* kind of death — graceful, crash,
``kill -9`` — is the same command again: the journal replays, dead leases
are reclaimed, completed results are served from the store.

SIGINT/SIGTERM shut down gracefully: in-flight jobs finish or are
released, the journal is compacted and fsync'd, the ready file is removed.
SIGQUIT is the diagnostics signal: the daemon dumps its flight-recorder
ring to ``STATE_DIR/flightrec-<ts>.jsonl`` and keeps serving; the same
dump fires automatically on worker-crash evidence and on an unhandled
daemon exception.

``serve --chaos SPEC`` (repeatable, testing only) arms a deterministic
storage fault plan beneath the daemon's own durable writes
(:mod:`repro.service.chaos`) — the CI chaos-smoke job serves this way,
kills the daemon, and proves recovery with ``fsck``.

Clients (plain stdlib ``urllib``, talking to a running daemon)::

    python -m repro.service submit --url URL (--preset NAME | --config PATH)
        --workload WL --n-instrs N [--priority P] [--submitter S] [--wait]
        [--inject-fault SPEC]
    python -m repro.service status --url URL JOB_ID
    python -m repro.service result --url URL JOB_ID
    python -m repro.service cancel --url URL JOB_ID
    python -m repro.service stats  --url URL
    python -m repro.service metrics --url URL
    python -m repro.service events --url URL [--n N] [--kind K]
    python -m repro.service fsck STATE_DIR [--repair] [--json]

``metrics`` prints the daemon's Prometheus text exposition verbatim (what
a scraper sees at ``GET /metrics``); ``events`` prints the flight-recorder
ring as JSON; ``fsck`` is the offline crash-consistency checker
(:mod:`repro.service.fsck`), also reachable as
``python -m repro.service.fsck``.

Every client command accepts ``--timeout S`` (per-request socket deadline,
default 30), and idempotent GETs additionally retry with exponential
backoff and full jitter (``--retries``, ``--backoff-s``) — so a daemon
mid-restart looks like latency, not an error.  A service that stays
unreachable is reported as a one-line message, never a traceback.

Exit codes: 0 success; 1 request/served error; 2 usage; 4 a ``--wait``
ended on a job that failed or was cancelled; 5 the service is unreachable
(connection refused/timed out after retries).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from .. import obs
from ..cache import add_cache_args, cache_from_args
from ..ioutil import atomic_write_json, set_io_backend
from .chaos import FAULT_KINDS, ChaosFS
from .daemon import build_service
from .http import make_server, serve_in_thread

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_JOB_FAILED = 4
EXIT_UNREACHABLE = 5

READY_FILE = "service.json"

#: Client-side request defaults (overridable per command).
DEFAULT_TIMEOUT_S = 30.0
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.5


class ServiceUnreachable(Exception):
    """The daemon could not be reached (refused/timed out after retries)."""

    def __init__(self, url: str, reason) -> None:
        super().__init__(
            f"cannot reach service at {url}: {reason} "
            f"(is the daemon running?)"
        )
        self.url = url
        self.reason = reason


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Durable campaign service: daemon and HTTP client",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the campaign daemon")
    serve.add_argument("state_dir", help="journal + checkpoint + ready-file dir")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = OS-assigned; see ready file)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="executor threads (default 1)")
    serve.add_argument("--isolation", choices=("thread", "process"),
                       default="thread",
                       help="run jobs in-process or in per-job worker "
                            "subprocesses (crash containment)")
    serve.add_argument("--timeout", type=float, metavar="S",
                       help="per-run wall-clock deadline")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="runner-level retries per attempt (the queue "
                            "additionally re-leases up to --max-attempts)")
    serve.add_argument("--max-rss-mb", type=float, metavar="M",
                       help="per-worker RSS kill guard (process isolation)")
    serve.add_argument("--max-depth", type=int, default=256, metavar="N",
                       help="bound on pending+leased jobs (default 256)")
    serve.add_argument("--quota", type=int, default=64, metavar="N",
                       help="per-submitter active-job quota (default 64)")
    serve.add_argument("--lease-s", type=float, default=120.0, metavar="S",
                       help="job lease duration (default 120)")
    serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="lease grants before a job fails terminally")
    serve.add_argument("--shed-watermark", type=float, default=0.75,
                       metavar="F",
                       help="active/max-depth fraction above which "
                            "low-priority jobs degrade to quick estimates")
    serve.add_argument("--shed-n-instrs", type=int, default=24_000,
                       metavar="N", help="quick-mode length shed jobs run at")
    serve.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                       help="worker crashes that quarantine a config")
    serve.add_argument("--breaker-cooldown-s", type=float, default=300.0,
                       metavar="S", help="quarantine cooldown before a probe")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip per-append journal fsync (testing only: "
                            "trades power-loss durability for speed)")
    serve.add_argument("--chaos", action="append", default=[], metavar="SPEC",
                       help="arm a deterministic storage fault beneath the "
                            "daemon's durable writes (testing only; "
                            "repeatable): kind[:path=SUBSTR][:after_ops=N]"
                            "[:times=N], kinds: " + ", ".join(FAULT_KINDS))
    add_cache_args(serve)
    obs.add_observability_args(serve)

    def client(name: str, help_: str, job_arg: bool = True):
        cmd = sub.add_parser(name, help=help_)
        cmd.add_argument("--url", required=True,
                         help="service base URL, e.g. http://127.0.0.1:8642")
        cmd.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S,
                         metavar="S",
                         help=f"per-request socket deadline "
                              f"(default {DEFAULT_TIMEOUT_S:g})")
        cmd.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                         metavar="N",
                         help=f"connection retries for idempotent GETs "
                              f"(default {DEFAULT_RETRIES})")
        cmd.add_argument("--backoff-s", type=float, default=DEFAULT_BACKOFF_S,
                         metavar="S",
                         help=f"retry backoff base, doubled per attempt with "
                              f"full jitter (default {DEFAULT_BACKOFF_S:g})")
        if job_arg:
            cmd.add_argument("job_id")
        return cmd

    submit = client("submit", "submit one job", job_arg=False)
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--preset", help="server-side config name")
    group.add_argument("--config", metavar="PATH",
                       help="JSON file with a serialized SimConfig")
    submit.add_argument("--workload", required=True)
    submit.add_argument("--n-instrs", type=int, required=True)
    submit.add_argument("--priority", default="normal",
                        choices=("low", "normal", "high"))
    submit.add_argument("--submitter", default="cli")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job reaches a terminal state")
    submit.add_argument("--poll-s", type=float, default=0.5)
    submit.add_argument("--inject-fault", metavar="SPEC",
                        help="arm a deterministic fault for this job's runs "
                             "(kind[:at=N][:times=N]; worker-* kinds need a "
                             "process-isolation daemon)")

    client("status", "fetch one job's state-machine row")
    client("result", "fetch a done job's full RunResult payload")
    client("cancel", "cancel a pending (or flag a leased) job")
    client("stats", "queue statistics and journal replay stats", job_arg=False)
    client("metrics", "print the daemon's Prometheus text exposition",
           job_arg=False)
    events = client("events", "print the flight-recorder event ring",
                    job_arg=False)
    events.add_argument("--n", type=int, metavar="N",
                        help="only the most recent N events")
    events.add_argument("--kind", metavar="K",
                        help="only events of one kind (e.g. lease_expired)")
    wait = client("wait", "block until a job is terminal")
    wait.add_argument("--poll-s", type=float, default=0.5)

    fsck = sub.add_parser(
        "fsck",
        help="offline crash-consistency check of a service state dir",
    )
    fsck.add_argument("state_dir")
    fsck.add_argument("--repair", action="store_true",
                      help="quarantine and rebuild (refused while a daemon "
                           "is live)")
    fsck.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable report")
    return parser


# ----------------------------------------------------------------- daemon


def make_sigquit_handler(service):
    """The SIGQUIT action: dump the flight recorder, keep serving.

    Factored out so tests can exercise the dump path without delivering a
    real signal.  The handler never raises — a diagnostics request must
    not become the incident.
    """

    def _on_sigquit(_signum, _frame):
        try:
            path = service.dump_flight_recorder("sigquit")
        except Exception as exc:  # pragma: no cover - defensive
            print(f"flight-recorder dump failed: {exc!r}", file=sys.stderr)
            return
        if path is not None:
            print(f"flight recorder dumped to {path}", file=sys.stderr)

    return _on_sigquit


def _serve(args: argparse.Namespace) -> int:
    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    if args.chaos:
        # Process-lifetime install: the shim dies with the daemon, and a
        # chaos daemon exists to be killed and recovered from anyway.
        chaos = ChaosFS(args.chaos, root=state_dir)
        set_io_backend(chaos)
        print(
            f"storage chaos armed: {len(chaos.rules)} fault rule(s)",
            file=sys.stderr,
        )
    with obs.observability_session(args):
        service = build_service(
            state_dir / "journal.wal",
            state_dir / "ckpt",
            fsync=not args.no_fsync,
            queue_kwargs=dict(
                max_depth=args.max_depth,
                quota=args.quota,
                lease_s=args.lease_s,
                max_attempts=args.max_attempts,
                shed_watermark=args.shed_watermark,
                shed_n_instrs=args.shed_n_instrs,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_s=args.breaker_cooldown_s,
            ),
            workers=args.workers,
            isolation=args.isolation,
            timeout_s=args.timeout,
            retries=args.retries,
            max_rss_mb=args.max_rss_mb,
            cache=cache_from_args(args),
            cache_near=args.cache_near,
        )
        server = make_server(service, args.host, args.port)
        host, port = server.server_address[:2]
        ready_path = state_dir / READY_FILE
        atomic_write_json(ready_path, {
            "pid": os.getpid(),
            "host": host,
            "port": port,
            "url": f"http://{host}:{port}",
        })
        stopping = []

        def _on_signal(signum, _frame):
            stopping.append(signum)
            # A second signal while draining kills us the hard way — the
            # journal makes that safe too.
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)

        signal.signal(signal.SIGINT, _on_signal)
        signal.signal(signal.SIGTERM, _on_signal)
        if hasattr(signal, "SIGQUIT"):
            signal.signal(signal.SIGQUIT, make_sigquit_handler(service))
        service.start()
        replay = service.queue.replay_stats
        print(
            f"service ready at http://{host}:{port} "
            f"(journal: {replay.records} records replayed"
            + (f", {replay.torn_bytes} torn bytes truncated"
               if replay.torn_bytes else "")
            + f"; queue depth {service.queue.depth()})",
            file=sys.stderr,
        )
        http_thread = serve_in_thread(server)
        try:
            while not stopping:
                time.sleep(0.1)
        except BaseException:
            # An unhandled daemon exception is exactly what the flight
            # recorder exists for: dump the last seconds, then die loudly.
            service.dump_flight_recorder("daemon-exception")
            raise
        finally:
            print("shutting down: draining in-flight jobs", file=sys.stderr)
            server.shutdown()
            http_thread.join(timeout=5.0)
            server.server_close()
            service.stop()
            try:
                ready_path.unlink()
            except OSError:
                pass
        return EXIT_OK


# ----------------------------------------------------------------- client


def _request(
    url: str,
    *,
    method: str = "GET",
    payload: dict | None = None,
    timeout: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    rng: random.Random | None = None,
    sleep=time.sleep,
):
    """One JSON request; connection failures retry idempotent GETs only.

    Retries use exponential backoff with *full jitter*
    (``backoff_s * 2**attempt * random()``) so a fleet of clients hammering
    a restarting daemon spreads out instead of synchronising.  An HTTP
    error status is a *served* response — returned, never retried.  A
    still-unreachable service raises :class:`ServiceUnreachable`.
    """
    data = json.dumps(payload).encode() if payload is not None else None
    attempts = (retries + 1) if method == "GET" else 1
    rand = rng.random if rng is not None else random.random
    last: Exception | None = None
    for attempt in range(attempts):
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                return exc.code, json.loads(body or b"{}")
            except json.JSONDecodeError:
                return exc.code, {"error": body.decode(errors="replace")}
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            last = exc
            if attempt + 1 < attempts:
                sleep(backoff_s * (2 ** attempt) * rand())
    reason = getattr(last, "reason", None) or last
    raise ServiceUnreachable(url, reason)


def _request_text(
    url: str,
    *,
    timeout: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    sleep=time.sleep,
) -> tuple[int, str]:
    """GET a non-JSON endpoint (the Prometheus exposition) verbatim."""
    last: Exception | None = None
    for attempt in range(retries + 1):
        try:
            request = urllib.request.Request(url)
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode(errors="replace")
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            last = exc
            if attempt < retries:
                sleep(backoff_s * (2 ** attempt) * random.random())
    reason = getattr(last, "reason", None) or last
    raise ServiceUnreachable(url, reason)


def _print(payload: dict) -> None:
    print(json.dumps(payload, indent=2))


def _request_opts(args: argparse.Namespace) -> dict:
    return {
        "timeout": args.timeout,
        "retries": args.retries,
        "backoff_s": args.backoff_s,
    }


def _wait_terminal(base: str, job_id: str, poll_s: float, opts: dict) -> int:
    while True:
        status, payload = _request(f"{base}/api/v1/jobs/{job_id}", **opts)
        if status != 200:
            _print(payload)
            return EXIT_ERROR
        if payload["state"] in ("done", "failed", "cancelled"):
            _print(payload)
            return EXIT_OK if payload["state"] == "done" else EXIT_JOB_FAILED
        time.sleep(poll_s)


def _client(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    opts = _request_opts(args)
    if args.command == "submit":
        body: dict = {
            "workload": args.workload,
            "n_instrs": args.n_instrs,
            "priority": args.priority,
            "submitter": args.submitter,
        }
        if args.preset:
            body["preset"] = args.preset
        else:
            body["config"] = json.loads(Path(args.config).read_text())
        if args.inject_fault:
            body["inject_fault"] = args.inject_fault
        status, payload = _request(
            f"{base}/api/v1/jobs", method="POST", payload=body, **opts
        )
        if status != 202:
            _print(payload)
            return EXIT_ERROR
        if args.wait:
            # One JSON document on stdout either way: the ack goes to
            # stderr, the terminal row to stdout.
            print(json.dumps(payload), file=sys.stderr)
            return _wait_terminal(base, payload["job_id"], args.poll_s, opts)
        _print(payload)
        return EXIT_OK
    if args.command == "status":
        status, payload = _request(f"{base}/api/v1/jobs/{args.job_id}", **opts)
    elif args.command == "result":
        status, payload = _request(
            f"{base}/api/v1/jobs/{args.job_id}/result", **opts
        )
    elif args.command == "cancel":
        status, payload = _request(
            f"{base}/api/v1/jobs/{args.job_id}/cancel", method="POST", **opts
        )
    elif args.command == "stats":
        status, payload = _request(f"{base}/api/v1/stats", **opts)
    elif args.command == "metrics":
        status, text = _request_text(f"{base}/metrics", **opts)
        sys.stdout.write(text)
        return EXIT_OK if status == 200 else EXIT_ERROR
    elif args.command == "events":
        params = []
        if args.n is not None:
            params.append(f"n={args.n}")
        if args.kind:
            params.append(f"kind={args.kind}")
        suffix = "?" + "&".join(params) if params else ""
        status, payload = _request(f"{base}/api/v1/events{suffix}", **opts)
    elif args.command == "wait":
        return _wait_terminal(base, args.job_id, args.poll_s, opts)
    else:  # pragma: no cover - argparse guards this
        return EXIT_USAGE
    _print(payload)
    return EXIT_OK if 200 <= status < 300 else EXIT_ERROR


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "fsck":
        from .fsck import main as fsck_main

        fsck_argv = [args.state_dir]
        if args.repair:
            fsck_argv.append("--repair")
        if args.as_json:
            fsck_argv.append("--json")
        return fsck_main(fsck_argv)
    try:
        return _client(args)
    except ServiceUnreachable as exc:
        # One line, a distinct exit code, no traceback: "the daemon is not
        # up" is an operational state, not a client crash.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNREACHABLE


if __name__ == "__main__":
    sys.exit(main())
