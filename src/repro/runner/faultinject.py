"""Deterministic fault injection for exercising the runner's failure paths.

The isolation/retry/timeout/report machinery in :mod:`repro.runner.runner`
would otherwise only fire on genuine bugs; this harness makes each failure
mode reproducible on demand by wrapping the real
:class:`~repro.sim.simulator.Simulator`:

* ``raise`` — raise :class:`~repro.errors.InjectedFault` at the Nth retired
  instruction (through the simulator's ``on_instruction`` hook, so the crash
  happens mid-simulation, exactly where a real model bug would).
* ``corrupt-trace`` — flip one trace record to garbage before the run (the
  corrupted copy is private: the shared, memoised trace is never touched).
* ``nan-metrics`` — let the simulation finish, then poison the returned
  metrics with NaN cycles, exercising the runner's integrity validation.

Three further kinds exercise the *process-level* containment of the fleet
executor (:mod:`repro.runner.fleet`) and are hard faults by design — they
take the whole hosting process down, so they must only ever run inside an
isolated worker (the experiment CLI refuses them without ``--jobs >= 2``):

* ``worker-crash`` — the process dies via ``os._exit`` at the Nth retired
  instruction, exactly like a segfaulting native extension: no exception,
  no cleanup, no result message.
* ``worker-hang`` — the process spins in a sleep loop at the Nth retired
  instruction, ignoring the cooperative deadline (the hook never returns),
  so only the parent's hard wall-clock kill can stop it.
* ``worker-oom`` — the process allocates memory in bounded chunks (up to
  :data:`OOM_CAP_MB`) and then hangs, tripping the fleet's RSS guard (or,
  unguarded, its hard deadline).

An injector fires at most ``times`` times (default 1) and only on runs
matching its ``workload``/``config_substr`` filters, so "fail the first
attempt, succeed on retry" and "fail one experiment mid-suite" are both a
one-liner.  Use :meth:`FaultInjector.simulator_factory` as the runner's
``simulator_factory``, or ``--inject-fault`` on the experiment CLI.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

from ..errors import InjectedFault
from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from ..sim.simulator import Simulator
from ..workloads.trace import Instr, Op, Trace

#: Fault kinds that kill/stall the hosting *process* — safe only inside an
#: isolated fleet worker, never on the serial in-process path.
WORKER_KINDS = ("worker-crash", "worker-hang", "worker-oom")

KINDS = ("raise", "corrupt-trace", "nan-metrics", *WORKER_KINDS)

#: Exit status of a ``worker-crash`` injection (distinctive in reports).
WORKER_CRASH_EXIT = 41

#: ``worker-oom`` allocation chunk and total ballast cap, in MiB.  The cap
#: bounds the blast radius when no RSS guard is armed: the injector then
#: degrades into a hang and the hard deadline reaps it.
OOM_CHUNK_MB = 32
OOM_CAP_MB = 512


@dataclass
class FaultInjector:
    """A deterministic fault plan shared by the wrapped simulators it builds.

    Args:
        kind: one of ``raise``, ``corrupt-trace``, ``nan-metrics``.
        at_instruction: retired-instruction index for ``raise`` (and the
            record index corrupted by ``corrupt-trace``).
        workload: only fire on this workload name (``None`` = any).
        config_substr: only fire when the config name contains this.
        times: total number of runs this injector will sabotage.
    """

    kind: str = "raise"
    at_instruction: int = 1000
    workload: str | None = None
    config_substr: str | None = None
    times: int = 1
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )

    # ------------------------------------------------------------- matching

    def _matches(self, config_name: str, workload: str) -> bool:
        if self.fired >= self.times:
            return False
        if self.workload is not None and workload != self.workload:
            return False
        if self.config_substr is not None and self.config_substr not in config_name:
            return False
        return True

    def _arm(self, config_name: str, workload: str) -> bool:
        """Consume one firing if this run matches the plan."""
        if not self._matches(config_name, workload):
            return False
        self.fired += 1
        return True

    # ------------------------------------------------------------- factory

    def simulator_factory(self, config: SimConfig) -> "FaultySimulator":
        """Drop-in ``simulator_factory`` for :class:`ExperimentRunner`."""
        return FaultySimulator(config, self)

    # ------------------------------------------------------------- CLI spec

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Parse the CLI form ``kind[:key=value[:key=value...]]``.

        Example: ``raise:workload=hmmer_like:at=2000:times=1``.
        Keys: ``at``, ``workload``, ``config``, ``times``.
        """
        parts = spec.split(":")
        kwargs: dict = {"kind": parts[0]}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault spec segment {part!r} in {spec!r}")
            if key == "at":
                kwargs["at_instruction"] = int(value)
            elif key == "workload":
                kwargs["workload"] = value
            elif key == "config":
                kwargs["config_substr"] = value
            elif key == "times":
                kwargs["times"] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r} in {spec!r}")
        return cls(**kwargs)


class FaultySimulator(Simulator):
    """A :class:`Simulator` that executes one injector's fault plan."""

    def __init__(self, config: SimConfig, injector: FaultInjector) -> None:
        super().__init__(config)
        self.injector = injector

    def run(self, workload, n_instrs=None, *, on_instruction=None, **kwargs):
        from ..sim.simulator import DEFAULT_TRACE_LENGTH

        if n_instrs is None:
            n_instrs = DEFAULT_TRACE_LENGTH
        name = workload if isinstance(workload, str) else workload.name
        inj = self.injector
        armed = inj._arm(self.config.name, name)
        if not armed:
            return super().run(
                workload, n_instrs, on_instruction=on_instruction, **kwargs
            )

        if inj.kind == "raise":
            target = inj.at_instruction

            def tripwire(retired: int) -> None:
                if retired >= target:
                    raise InjectedFault(
                        f"injected fault at instruction {retired} "
                        f"({self.config.name}/{name})"
                    )
                if on_instruction is not None:
                    on_instruction(retired)

            return super().run(workload, n_instrs, on_instruction=tripwire, **kwargs)

        if inj.kind in WORKER_KINDS:
            hook = _worker_fault_hook(inj.kind, inj.at_instruction, on_instruction)
            return super().run(workload, n_instrs, on_instruction=hook, **kwargs)

        if inj.kind == "corrupt-trace":
            trace = self._materialize(workload, n_instrs, kwargs.get("warmup", True))
            corrupted = _corrupt_record(trace, inj.at_instruction)
            return super().run(
                corrupted, n_instrs, on_instruction=on_instruction, **kwargs
            )

        # nan-metrics: the run completes, the measurement is poison.
        result = super().run(workload, n_instrs, on_instruction=on_instruction, **kwargs)
        return dataclasses.replace(result, cycles=float("nan"))

    def _materialize(self, workload, n_instrs: int, warmup: bool) -> Trace:
        if isinstance(workload, Trace):
            return workload
        from ..workloads.suites import build_trace, get_spec

        spec = get_spec(workload)
        length = n_instrs * spec.length_multiplier
        return build_trace(workload, 2 * length if warmup else length)


def _worker_fault_hook(kind: str, target: int, on_instruction):
    """The ``on_instruction`` hook executing one process-level fault plan.

    These hooks never return once tripped (the process exits, spins or
    balloons), which is the point: the cooperative deadline is polled from
    the same simulation loop and therefore cannot fire — only the fleet
    parent's process-level watchdog can contain them.
    """
    if kind == "worker-crash":

        def crash(retired: int) -> None:
            if retired >= target:
                os._exit(WORKER_CRASH_EXIT)
            if on_instruction is not None:
                on_instruction(retired)

        return crash

    if kind == "worker-hang":

        def hang(retired: int) -> None:
            if retired >= target:
                while True:
                    time.sleep(0.05)
            if on_instruction is not None:
                on_instruction(retired)

        return hang

    ballast: list[bytearray] = []

    def oom(retired: int) -> None:
        if retired >= target:
            while len(ballast) * OOM_CHUNK_MB < OOM_CAP_MB:
                # bytearray zero-fills, so every page is touched and the
                # RSS growth is real, not lazily mapped.
                ballast.append(bytearray(OOM_CHUNK_MB << 20))
                time.sleep(0.02)
            while True:
                time.sleep(0.05)
        if on_instruction is not None:
            on_instruction(retired)

    return oom


def _corrupt_record(trace: Trace, index: int) -> Trace:
    """Copy ``trace`` with one record corrupted (the original is untouched).

    The corrupted record is a load whose register metadata is gibberish —
    the shape of a bit-flipped trace file — which the dependence-tracking
    core cannot schedule and crashes on.
    """
    instrs = list(trace.instrs)
    index = min(max(index, 0), len(instrs) - 1)
    instrs[index] = Instr(
        pc=-1, op=Op.LOAD, srcs=(None,), dst=-(10**9), addr=-1  # type: ignore[arg-type]
    )
    return Trace(
        name=trace.name,
        category=trace.category,
        instrs=instrs,
        memory_image=trace.memory_image,
    )
