"""Resilient experiment runner: checkpoint/resume, deadlines, fault isolation.

The runner is the single execution path for experiment simulations: the
experiment modules call :func:`repro.experiments.common.cached_run`, which
delegates to whichever :class:`ExperimentRunner` is *active*.  The default is
a process-local runner with a memory-only store (exactly the old
``lru_cache`` behaviour); the experiment CLI installs a configured one
(checkpoint directory, resume, timeout, retries, fault injection) with
:func:`use_runner` for the duration of a campaign.

See :mod:`repro.runner.runner` for the execution semantics,
:mod:`repro.runner.store` for the checkpoint format,
:mod:`repro.runner.fleet` for the process-isolated parallel executor
(``--jobs N``) and :mod:`repro.runner.faultinject` for the testing harness.
"""

from __future__ import annotations

from contextlib import contextmanager

from .faultinject import FaultInjector, FaultySimulator, WORKER_KINDS
from .fleet import FleetRunner, FleetStats
from .runner import (
    Deadline,
    ExperimentRunner,
    FailureRecord,
    RunnerStats,
    validate_result,
)
from .store import ResultStore, config_fingerprint

_active_runner: ExperimentRunner | None = None


def get_runner() -> ExperimentRunner:
    """The runner experiment code executes through (created on first use)."""
    global _active_runner
    if _active_runner is None:
        _active_runner = ExperimentRunner()
    return _active_runner


def set_runner(runner: ExperimentRunner | None) -> ExperimentRunner | None:
    """Install (or, with ``None``, reset) the active runner; returns the old."""
    global _active_runner
    previous = _active_runner
    _active_runner = runner
    return previous


@contextmanager
def use_runner(runner: ExperimentRunner):
    """Scope ``runner`` as the active runner for a ``with`` block."""
    previous = set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)


__all__ = [
    "Deadline",
    "ExperimentRunner",
    "FailureRecord",
    "FaultInjector",
    "FaultySimulator",
    "FleetRunner",
    "FleetStats",
    "ResultStore",
    "RunnerStats",
    "WORKER_KINDS",
    "config_fingerprint",
    "get_runner",
    "set_runner",
    "use_runner",
    "validate_result",
]
