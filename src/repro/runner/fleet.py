"""Process-isolated parallel campaign executor: the fleet.

:class:`FleetRunner` is an :class:`~repro.runner.runner.ExperimentRunner`
whose ``run``/``sweep`` dispatch ``(config, workload, n_instrs)`` jobs to a
pool of isolated worker subprocesses (:mod:`repro.runner.worker`).  It keeps
the serial runner's whole contract — store hits, checkpoints, failure
records, stats — and adds the guarantees only process isolation can give:

* **Hard deadlines.** The cooperative per-instruction deadline still runs
  *inside* each worker (clean :class:`~repro.errors.RunTimeoutError`s for
  merely-slow runs), but the parent also enforces a hard wall-clock kill —
  ``timeout_s`` plus slack — that stops hangs the cooperative check cannot
  (a stuck native call, a hook that never returns).
* **Crash containment.** A worker that exits nonzero, is signalled, or is
  OOM-killed becomes a :class:`~repro.runner.runner.FailureRecord` (error
  type :class:`~repro.errors.WorkerCrashError`) and a replacement worker is
  spawned; the campaign keeps going.
* **Watchdog.** The parent polls worker liveness every dispatch-loop tick
  using heartbeats and ``/proc``; with ``max_rss_mb`` set it kills workers
  whose resident set exceeds the guard
  (:class:`~repro.errors.WorkerOOMError`) before the kernel's OOM killer
  picks a victim for us.
* **Graceful shutdown.** SIGINT/SIGTERM kill the workers, keep every
  already-completed result (each was flushed to the
  :class:`~repro.runner.store.ResultStore` the moment it arrived) and write
  a resume manifest, so ``--resume`` picks up exactly where the campaign
  stopped.
* **Determinism.** Results are returned in submission order and
  checkpointed by the parent through the same store layer as the serial
  path, so a parallel campaign's result payloads are byte-identical to a
  serial one's.

Workers are spawned (not forked): each is a fresh interpreter, so a
campaign inherits no parent state beyond the job payloads — the same
property that makes crashes containable makes results reproducible.
"""

from __future__ import annotations

import logging
import os
import queue as queue_mod
import signal
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import multiprocessing as mp

from .. import obs
from ..errors import (
    RunFailure,
    RunTimeoutError,
    WorkerCrashError,
    WorkerOOMError,
)
from ..ioutil import atomic_write_json
from ..obs import get_logger, log_event
from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from ..sim.serialization import config_to_dict, result_from_dict
from .faultinject import FaultInjector
from .runner import ExperimentRunner, FailureRecord
from .store import ResultStore, workload_fingerprint
from .worker import HEARTBEAT_INTERVAL_S, worker_main

#: Resume-manifest schema version and file name (under the checkpoint dir).
MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Seconds the dispatch loop blocks on the result queue per tick; bounds
#: watchdog latency.
POLL_INTERVAL_S = 0.05

#: Seconds to wait for a dead worker's final message before declaring the
#: job crashed (a "done" written just before exit may still be in flight).
DEAD_WORKER_GRACE_S = 1.0

logger = get_logger("runner.fleet")


def hard_deadline_s(timeout_s: float | None) -> float | None:
    """The parent's kill deadline: cooperative timeout plus slack.

    The slack gives the in-worker cooperative deadline first shot at a
    clean :class:`RunTimeoutError`; the hard kill is the backstop for runs
    that can no longer execute Python (hangs, stuck syscalls).
    """
    if timeout_s is None:
        return None
    return timeout_s + max(1.0, 0.25 * timeout_s)


def proc_rss_mb(pid: int) -> float | None:
    """Current RSS of ``pid`` in MiB via ``/proc`` (``None`` off Linux)."""
    try:
        with open(f"/proc/{pid}/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1 << 20)
    except (OSError, ValueError, IndexError):
        return None


@dataclass
class _Job:
    """One dispatched unit: the position in the caller's submission order."""

    index: int
    config: SimConfig
    workload: str
    n_instrs: int
    fault: dict | None = None


@dataclass
class _Worker:
    """Parent-side view of one worker process."""

    worker_id: int
    proc: object                 # multiprocessing Process
    job_q: object                # its private job queue
    job: _Job | None = None
    started: float | None = None     # monotonic dispatch time of `job`
    last_beat: float | None = None
    beat_rss_mb: float | None = None
    dead_since: float | None = None  # noticed dead; draining grace window


@dataclass
class FleetStats:
    """Process-level counters (the run-level ones live in ``RunnerStats``)."""

    workers_spawned: int = 0
    workers_killed: int = 0      #: killed by the watchdog (deadline/RSS)
    workers_crashed: int = 0     #: died on their own (exit/signal/OOM)
    hard_timeouts: int = 0
    rss_kills: int = 0
    jobs_dispatched: int = 0


class _Interrupted(BaseException):
    """Internal: SIGTERM converted to an exception in the dispatch loop."""


class FleetRunner(ExperimentRunner):
    """Parallel, process-isolated drop-in for :class:`ExperimentRunner`.

    Args:
        store: shared result store; the *parent* performs every
            ``store.put`` (and therefore every checkpoint write), so a
            killed worker can never leave a torn checkpoint.
        jobs: worker processes; ``0`` means ``os.cpu_count()``.
        timeout_s: cooperative per-run deadline, enforced inside workers;
            the parent hard-kills at :func:`hard_deadline_s` of it.
        retries: in-worker retry budget for transient failures.
        max_rss_mb: optional per-worker RSS guard; exceeding it is a
            watchdog kill recorded as :class:`WorkerOOMError`.
        fault_specs: ``--inject-fault`` spec strings (or prebuilt
            :class:`FaultInjector`s).  The *parent* arms them — matching
            and the ``times`` budget stay campaign-global even though the
            sabotage executes inside whichever worker draws the job.
        heartbeat_s: worker heartbeat period.
        mp_context: multiprocessing start method (default ``spawn``).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        jobs: int = 0,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.25,
        max_rss_mb: float | None = None,
        fault_specs: Sequence[str | FaultInjector] = (),
        heartbeat_s: float = HEARTBEAT_INTERVAL_S,
        grace_s: float = DEAD_WORKER_GRACE_S,
        mp_context: str = "spawn",
        cache=None,
        cache_near: bool = False,
    ) -> None:
        super().__init__(
            store, timeout_s=timeout_s, retries=retries, backoff_s=backoff_s,
            cache=cache, cache_near=cache_near,
        )
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self.max_rss_mb = max_rss_mb
        self.heartbeat_s = heartbeat_s
        self.grace_s = grace_s
        self.mp_context = mp_context
        self.injectors = [
            spec if isinstance(spec, FaultInjector) else FaultInjector.from_spec(spec)
            for spec in fault_specs
        ]
        self.fleet_stats = FleetStats()
        #: The last manifest written (also persisted under the checkpoint
        #: dir when one is configured).
        self.last_manifest: dict | None = None
        #: Extra args stamped onto the ``worker:run`` span of every job
        #: dispatched while set — the campaign service points this at the
        #: current job's ``{job_id, trace_id}`` so worker spans correlate
        #: with the daemon's lifecycle spans after the trace merge.
        self.trace_args: dict = {}
        self._next_worker_id = 0

    # ------------------------------------------------------------- running

    def run(self, config: SimConfig, workload: str, n_instrs: int) -> RunResult:
        """Run one measurement in an isolated worker (store hits stay free)."""
        (result,) = self.run_many([(config, workload, n_instrs)])
        if result is None:
            raise self._failure_exc(self.failures[-1])
        return result

    def run_many(
        self, jobs: Sequence[tuple[SimConfig, str, int]]
    ) -> list[RunResult | None]:
        """Run a batch of jobs across the pool, in submission order.

        Returns one entry per submitted job: the :class:`RunResult`, or
        ``None`` for a job whose failure was contained (its
        :class:`FailureRecord` is appended to :attr:`failures`).  Raises
        ``KeyboardInterrupt`` after flushing state if the campaign is
        interrupted.
        """
        from ..plugins.compose import apply_active_selection

        ordered: list[RunResult | None] = [None] * len(jobs)
        misses: list[_Job] = []
        first_dispatch: dict[tuple, int] = {}
        duplicates: list[tuple[int, int]] = []
        for i, (config, workload, n_instrs) in enumerate(jobs):
            # Selection overrides are applied in the parent, so workers
            # receive already re-composed configurations.
            config = apply_active_selection(config)
            config.validate()
            cached = self.store.get(config, workload, n_instrs)
            if cached is not None:
                self.stats.store_hits += 1
                self._cache_put(config, workload, n_instrs, cached)
                ordered[i] = cached
                continue
            hit = self._cache_lookup(config, workload, n_instrs)
            if hit is not None:
                if hit.near:
                    # Estimate for a different key: served with provenance,
                    # never checkpointed as this point's result.
                    self.stats.cache_near_hits += 1
                    ordered[i] = hit.result
                    continue
                self.stats.cache_hits += 1
                self.store.put(config, workload, n_instrs, hit.result)
                ordered[i] = hit.result
                continue
            key = (
                self.store.fingerprint(config),
                workload_fingerprint(workload),
                n_instrs,
            )
            if key in first_dispatch:
                duplicates.append((i, first_dispatch[key]))
                continue
            first_dispatch[key] = i
            misses.append(_Job(
                i, config, workload, n_instrs,
                fault=self._arm_fault(config.name, workload),
            ))
        statuses: dict[int, str] = {}
        if misses:
            try:
                self._execute(misses, ordered, statuses)
            except (KeyboardInterrupt, _Interrupted):
                self._write_manifest(jobs, ordered, statuses, interrupted=True)
                raise KeyboardInterrupt from None
        for i, first in duplicates:
            ordered[i] = ordered[first]
        self._write_manifest(jobs, ordered, statuses, interrupted=False)
        return ordered

    def sweep(
        self,
        configs: Iterable[SimConfig],
        workloads: Iterable[str],
        n_instrs: int,
    ) -> dict[str, dict[str, RunResult]]:
        """Parallel sweep; completes every job before reporting failures.

        Unlike the serial runner (which raises at the *first* failed run),
        the fleet finishes the rest of the sweep first — every completed
        result is checkpointed — and then raises a single
        :class:`RunFailure` naming the casualties, so a later ``--resume``
        re-runs only the failed jobs.
        """
        configs = list(configs)
        workloads = list(workloads)
        jobs = [
            (config, workload, n_instrs)
            for config in configs
            for workload in workloads
        ]
        results = self.run_many(jobs)
        failed = [i for i, result in enumerate(results) if result is None]
        if failed:
            config, workload, n = jobs[failed[0]]
            raise RunFailure(
                f"{len(failed)} of {len(jobs)} jobs failed in parallel sweep "
                f"(first: {config.name}/{workload}; see failure report)",
                config_name=config.name,
                workload=workload,
                n_instrs=n,
                attempts=1,
                elapsed_s=0.0,
            )
        by_index = iter(results)
        return {
            config.name: {workload: next(by_index) for workload in workloads}
            for config in configs
        }

    # ------------------------------------------------------- dispatch loop

    def _execute(
        self,
        misses: list[_Job],
        ordered: list[RunResult | None],
        statuses: dict[int, str],
    ) -> None:
        ctx = mp.get_context(self.mp_context)
        self._ensure_child_import_path()
        result_q = ctx.Queue()
        pending = deque(misses)
        workers: list[_Worker] = []
        progress = (
            obs.Progress(len(misses), label="fleet")
            if len(misses) > 1
            else None
        )
        previous_term = self._install_sigterm()
        try:
            for _ in range(min(self.jobs, len(misses))):
                workers.append(self._spawn(ctx, result_q))
            while len(statuses) < len(misses):
                self._dispatch(workers, pending)
                message = self._poll(result_q)
                if message is not None:
                    self._handle(message, workers, ordered, statuses, progress)
                self._watchdog(workers, pending, ctx, result_q, statuses, progress)
        except (KeyboardInterrupt, _Interrupted):
            log_event(
                logger, logging.WARNING, "campaign interrupted",
                completed=sum(1 for s in statuses.values() if s == "completed"),
                failed=sum(1 for s in statuses.values() if s == "failed"),
                pending=len(misses) - len(statuses),
            )
            self._shutdown(workers, result_q, kill=True)
            raise
        else:
            self._shutdown(workers, result_q, kill=False)
        finally:
            self._restore_sigterm(previous_term)

    def _dispatch(self, workers: list[_Worker], pending: deque) -> None:
        for worker in workers:
            if worker.job is None and pending and worker.proc.is_alive():
                job = pending.popleft()
                worker.job_q.put(self._payload(job))
                worker.job = job
                worker.started = self.clock()
                worker.last_beat = worker.started
                worker.dead_since = None
                self.fleet_stats.jobs_dispatched += 1
                log_event(
                    logger, logging.DEBUG, "job dispatched",
                    worker=worker.worker_id, config=job.config.name,
                    workload=job.workload, index=job.index,
                )

    def _poll(self, result_q):
        try:
            return result_q.get(timeout=POLL_INTERVAL_S)
        except queue_mod.Empty:
            return None

    def _handle(self, message, workers, ordered, statuses, progress) -> None:
        kind = message[0]
        worker = self._worker_by_id(workers, message[1])
        if kind == "beat":
            if worker is not None:
                worker.last_beat = self.clock()
                worker.beat_rss_mb = message[3]
            return
        if kind == "log":
            payload = message[2]
            log_event(
                logging.getLogger(payload.get("logger", "repro")),
                payload.get("level", logging.INFO),
                payload.get("event", ""),
                worker=message[1],
                **payload.get("fields", {}),
            )
            return
        _, worker_id, index, body, job_stats = message
        if worker is None or worker.job is None or worker.job.index != index:
            # A terminal message for a job the watchdog already failed
            # (e.g. the kill raced a just-completed run): the watchdog's
            # verdict stands, drop the late message.
            return
        job = worker.job
        worker.job = None
        worker.started = None
        self.stats.executed += job_stats.get("executed", 0)
        self.stats.retries += job_stats.get("retries", 0)
        self.stats.timeouts += job_stats.get("timeouts", 0)
        self._merge_trace(job_stats)
        if kind == "done":
            result = result_from_dict(body)
            self.store.put(job.config, job.workload, job.n_instrs, result)
            self._cache_put(job.config, job.workload, job.n_instrs, result)
            ordered[job.index] = result
            statuses[job.index] = "completed"
            self.stats.completed += 1
            self._merge_obs(job, result)
            log_event(
                logger, logging.INFO, "job completed",
                worker=worker_id, config=job.config.name,
                workload=job.workload, ipc=round(result.ipc, 4),
            )
        else:  # "fail"
            record = FailureRecord(**body)
            self.failures.append(record)
            statuses[job.index] = "failed"
            self.stats.failures += 1
            log_event(
                logger, logging.ERROR, "job failed in worker",
                worker=worker_id, config=job.config.name,
                workload=job.workload, error_type=record.error_type,
                message=record.message,
            )
        if progress is not None:
            progress.tick(f"{job.config.name}/{job.workload}")

    # ----------------------------------------------------------- watchdog

    def _watchdog(
        self, workers, pending, ctx, result_q, statuses, progress
    ) -> None:
        now = self.clock()
        kill_after = hard_deadline_s(self.timeout_s)
        for i, worker in enumerate(workers):
            if worker.job is None:
                if not worker.proc.is_alive() and pending:
                    # An idle worker died between jobs; keep pool capacity.
                    workers[i] = self._respawn(worker, ctx, result_q)
                continue
            if not worker.proc.is_alive():
                # Grace window: its final message may still be in flight.
                if worker.dead_since is None:
                    worker.dead_since = now
                    continue
                if now - worker.dead_since < self.grace_s:
                    continue
                exitcode = worker.proc.exitcode
                self.fleet_stats.workers_crashed += 1
                cause = WorkerCrashError(
                    (
                        f"worker killed by signal {-exitcode}"
                        + (" (possible OOM kill)" if exitcode == -signal.SIGKILL else "")
                        if exitcode is not None and exitcode < 0
                        else f"worker exited with code {exitcode}"
                    )
                    + " without reporting a result",
                    exitcode=exitcode,
                )
                self._fail_running_job(worker, cause, statuses, progress)
                workers[i] = self._respawn(worker, ctx, result_q)
                continue
            elapsed = now - (worker.started or now)
            if kill_after is not None and elapsed > kill_after:
                self.fleet_stats.hard_timeouts += 1
                cause = RunTimeoutError(
                    f"hard deadline: worker unresponsive past the "
                    f"{self.timeout_s:g}s cooperative timeout "
                    f"({elapsed:.1f}s elapsed), killed",
                    elapsed_s=elapsed,
                    timeout_s=self.timeout_s or 0.0,
                )
                self.stats.timeouts += 1
                self._kill(worker)
                self._fail_running_job(worker, cause, statuses, progress)
                workers[i] = self._respawn(worker, ctx, result_q)
                continue
            if self.max_rss_mb is not None:
                rss = proc_rss_mb(worker.proc.pid)
                if rss is None:
                    rss = worker.beat_rss_mb
                if rss is not None and rss > self.max_rss_mb:
                    self.fleet_stats.rss_kills += 1
                    cause = WorkerOOMError(
                        f"worker RSS {rss:.0f} MiB exceeded the "
                        f"{self.max_rss_mb:g} MiB guard, killed",
                        rss_mb=rss,
                        limit_mb=self.max_rss_mb,
                    )
                    self._kill(worker)
                    self._fail_running_job(worker, cause, statuses, progress)
                    workers[i] = self._respawn(worker, ctx, result_q)

    def _fail_running_job(
        self, worker: _Worker, cause: Exception, statuses, progress
    ) -> None:
        job = worker.job
        assert job is not None
        elapsed = self.clock() - (worker.started or self.clock())
        record = FailureRecord(
            config_name=job.config.name,
            workload=job.workload,
            n_instrs=job.n_instrs,
            error_type=type(cause).__name__,
            message=str(cause),
            elapsed_s=elapsed,
            attempts=1,
            attempt_errors=[repr(cause)],
        )
        self.failures.append(record)
        statuses[job.index] = "failed"
        self.stats.failures += 1
        worker.job = None
        worker.started = None
        registry = obs.metrics()
        if registry.enabled:
            registry.counter("fleet.jobs.failed").inc()
        log_event(
            logger, logging.ERROR, "job failed at process level",
            worker=worker.worker_id, config=job.config.name,
            workload=job.workload, error_type=record.error_type,
            message=record.message, elapsed_s=round(elapsed, 2),
        )
        if progress is not None:
            progress.tick(f"{job.config.name}/{job.workload} (failed)")

    # ------------------------------------------------------ pool lifecycle

    def _spawn(self, ctx, result_q) -> _Worker:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        job_q = ctx.Queue()
        init = {
            "heartbeat_s": self.heartbeat_s,
            "metrics": obs.metrics().enabled,
            "trace": obs.tracer() is not None,
            "log_level": self._worker_log_level(),
        }
        proc = ctx.Process(
            target=worker_main,
            args=(worker_id, job_q, result_q, init),
            name=f"repro-fleet-{worker_id}",
            daemon=True,
        )
        proc.start()
        self.fleet_stats.workers_spawned += 1
        registry = obs.metrics()
        if registry.enabled:
            registry.gauge("fleet.workers").set(self.fleet_stats.workers_spawned)
        log_event(
            logger, logging.DEBUG, "worker spawned",
            worker=worker_id, pid=proc.pid,
        )
        return _Worker(worker_id=worker_id, proc=proc, job_q=job_q)

    def _respawn(self, dead: _Worker, ctx, result_q) -> _Worker:
        try:
            dead.job_q.close()
        except Exception:
            pass
        return self._spawn(ctx, result_q)

    def _kill(self, worker: _Worker) -> None:
        self.fleet_stats.workers_killed += 1
        try:
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        except Exception:
            pass
        log_event(
            logger, logging.WARNING, "worker killed",
            worker=worker.worker_id, pid=worker.proc.pid,
        )

    def _shutdown(self, workers: list[_Worker], result_q, *, kill: bool) -> None:
        for worker in workers:
            if kill:
                try:
                    worker.proc.kill()
                except Exception:
                    pass
            else:
                try:
                    worker.job_q.put(None)
                except Exception:
                    pass
        for worker in workers:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():
                try:
                    worker.proc.kill()
                    worker.proc.join(timeout=2.0)
                except Exception:
                    pass
            try:
                worker.job_q.close()
            except Exception:
                pass
        # Drain stragglers (beats/logs written before workers exited) so the
        # queue's feeder thread can't wedge interpreter shutdown.
        while True:
            try:
                result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
        result_q.close()

    # ------------------------------------------------------------ plumbing

    def _payload(self, job: _Job) -> dict:
        return {
            "index": job.index,
            "config": config_to_dict(job.config),
            "workload": job.workload,
            "n_instrs": job.n_instrs,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "fault": job.fault,
            "trace_args": dict(self.trace_args),
        }

    def _arm_fault(self, config_name: str, workload: str) -> dict | None:
        """Parent-side arming keeps ``times`` budgets campaign-global."""
        for injector in self.injectors:
            if injector._arm(config_name, workload):
                return {"kind": injector.kind, "at": injector.at_instruction}
        return None

    def _worker_by_id(self, workers: list[_Worker], worker_id: int):
        for worker in workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def _worker_log_level(self) -> int | None:
        root = logging.getLogger("repro")
        if root.level and root.level != logging.NOTSET and any(
            not isinstance(h, logging.NullHandler) for h in root.handlers
        ):
            return root.level
        return None

    def _merge_trace(self, job_stats: dict) -> None:
        """Rebase a worker's shipped spans onto the parent's timeline.

        Workers record into their own collector and ship
        ``{wall_t0, events}`` with their terminal message; the wall-clock
        anchor lets :meth:`TraceCollector.merge_events` line both
        timelines up, and the worker's own ``pid`` keeps it on a separate
        Perfetto process track.
        """
        trace = job_stats.get("trace")
        collector = obs.tracer()
        if not trace or collector is None:
            return
        collector.merge_events(
            trace.get("events", ()), wall_t0=trace.get("wall_t0")
        )

    def _merge_obs(self, job: _Job, result: RunResult) -> None:
        """Fold a worker's shipped telemetry into the parent's registry."""
        registry = obs.metrics()
        if not registry.enabled:
            return
        registry.counter("fleet.jobs.completed").inc()
        telemetry = result.telemetry or {}
        for phase, seconds in (telemetry.get("phases") or {}).items():
            registry.histogram(
                f"fleet.phase.{phase}_s", bounds=(0.1, 0.5, 1, 5, 30, 120)
            ).record(seconds)

    def _failure_exc(self, record: FailureRecord) -> RunFailure:
        return RunFailure(
            f"{record.config_name}/{record.workload} failed in worker "
            f"({record.error_type}: {record.message})",
            config_name=record.config_name,
            workload=record.workload,
            n_instrs=record.n_instrs,
            attempts=record.attempts,
            elapsed_s=record.elapsed_s,
        )

    def _ensure_child_import_path(self) -> None:
        """Make sure spawned interpreters can import this package.

        ``spawn`` children inherit ``PYTHONPATH`` from the environment but
        not ``sys.path`` mutations, so a parent running from a source tree
        (``PYTHONPATH=src`` or an editable install) prepends the package
        root for its children.
        """
        import repro

        root = str(Path(repro.__file__).resolve().parents[1])
        existing = os.environ.get("PYTHONPATH", "")
        if root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                root + (os.pathsep + existing if existing else "")
            )

    # ------------------------------------------------------------ signals

    def _install_sigterm(self):
        def _on_term(_signum, _frame):
            raise _Interrupted()

        try:
            return signal.signal(signal.SIGTERM, _on_term)
        except ValueError:  # not the main thread
            return None

    def _restore_sigterm(self, previous) -> None:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:
                pass

    # ------------------------------------------------------------ manifest

    def _write_manifest(
        self,
        jobs: Sequence[tuple[SimConfig, str, int]],
        ordered: Sequence[RunResult | None],
        statuses: dict[int, str],
        *,
        interrupted: bool,
    ) -> dict:
        rows = []
        counts = {"completed": 0, "failed": 0, "pending": 0}
        for i, (config, workload, n_instrs) in enumerate(jobs):
            if ordered[i] is not None:
                status = "completed"
            else:
                status = statuses.get(i, "pending")
            counts[status] += 1
            rows.append({
                "config": config.name,
                "workload": workload,
                "n_instrs": n_instrs,
                "fingerprint": self.store.fingerprint(config)[:12],
                "status": status,
            })
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "status": "interrupted" if interrupted else "complete",
            "written_at": time.time(),
            "total": len(rows),
            "counts": counts,
            "jobs": rows,
        }
        self.last_manifest = manifest
        directory = self.store.checkpoint_dir
        if directory is not None:
            path = Path(directory) / MANIFEST_NAME
            atomic_write_json(path, manifest)
            log_event(
                logger, logging.INFO, "resume manifest written",
                path=str(path), status=manifest["status"], **counts,
            )
        return manifest
