"""Subprocess entry point for the fleet executor (:mod:`repro.runner.fleet`).

Each worker is a plain :class:`~repro.runner.runner.ExperimentRunner` in its
own process, pulling one job at a time off its private queue and shipping a
message stream back to the parent:

* ``("done", worker_id, job_index, result_dict, job_stats)`` — a completed
  run, serialized through :func:`~repro.sim.serialization.result_to_dict`
  (so ``RunResult.telemetry`` rides along when metrics are enabled).
* ``("fail", worker_id, job_index, record_dict, job_stats)`` — a contained
  failure: the worker's runner exhausted its in-process recovery (retry,
  cooperative deadline, integrity checks) and this is the structured
  :class:`~repro.runner.runner.FailureRecord`.  The worker itself survives
  and moves on to its next job.
* ``("beat", worker_id, job_index, rss_mb)`` — heartbeat emitted from the
  simulator's per-instruction hook, rate-limited by wall clock; the parent
  watchdog uses it for liveness and as an RSS fallback where ``/proc`` is
  unavailable.
* ``("log", worker_id, payload)`` — structured log events captured from the
  ``repro`` logger namespace, replayed by the parent with a ``worker=`` tag.

Anything that escapes this protocol — ``os._exit``, a segfault, an OOM
kill, a hard hang — is by definition a *process-level* fault, detected and
converted into a failure record by the parent's watchdog, never by code in
this module.

The worker ignores SIGINT: campaign interruption is the parent's job (it
decides whether to drain or kill), and a terminal-wide Ctrl-C must not race
the parent's shutdown by killing workers out from under it.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from contextlib import nullcontext

from .. import obs
from ..obs import get_logger, log_event
from ..sim.serialization import config_from_dict, result_to_dict
from ..sim.simulator import Simulator
from .faultinject import FaultInjector
from .runner import ExperimentRunner, FailureRecord
from .store import ResultStore

#: Default seconds between heartbeat messages from a busy worker.
HEARTBEAT_INTERVAL_S = 0.25

logger = get_logger("runner.worker")


def self_rss_mb() -> float | None:
    """Resident set size of this process in MiB (``None`` if unknowable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1 << 20)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is KiB on Linux (peak, not current — good enough as a
        # fallback guard signal).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    except Exception:
        return None


class Heartbeat:
    """Per-instruction hook posting rate-limited liveness/RSS messages."""

    def __init__(
        self,
        result_q,
        worker_id: int,
        job_index: int,
        interval_s: float = HEARTBEAT_INTERVAL_S,
        clock=time.monotonic,
    ) -> None:
        self._q = result_q
        self._worker_id = worker_id
        self._job_index = job_index
        self._interval = interval_s
        self._clock = clock
        self._next = 0.0

    def __call__(self, _retired: int) -> None:
        now = self._clock()
        if now < self._next:
            return
        self._next = now + self._interval
        try:
            self._q.put(("beat", self._worker_id, self._job_index, self_rss_mb()))
        except Exception:
            # A dying parent/queue must not crash the simulation mid-run.
            pass


class _ShippingHandler(logging.Handler):
    """Forwards ``repro`` log records to the parent over the result queue."""

    def __init__(self, result_q, worker_id: int, level: int) -> None:
        super().__init__(level)
        self._q = result_q
        self._worker_id = worker_id

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._q.put((
                "log",
                self._worker_id,
                {
                    "level": record.levelno,
                    "logger": record.name,
                    "event": record.getMessage(),
                    "fields": dict(getattr(record, "fields", None) or {}),
                },
            ))
        except Exception:
            pass


def _job_runner(job: dict) -> ExperimentRunner:
    """The in-worker runner for one job (fresh store: the parent owns disk)."""
    factory = Simulator
    fault = job.get("fault")
    if fault is not None:
        injector = FaultInjector(
            kind=fault["kind"], at_instruction=fault["at"], times=1
        )
        factory = injector.simulator_factory
    return ExperimentRunner(
        ResultStore(),
        timeout_s=job.get("timeout_s"),
        retries=job.get("retries", 0),
        backoff_s=job.get("backoff_s", 0.25),
        simulator_factory=factory,
    )


def _job_stats(runner: ExperimentRunner) -> dict:
    """The per-job counter deltas the parent merges into its own stats."""
    return {
        "executed": runner.stats.executed,
        "retries": runner.stats.retries,
        "timeouts": runner.stats.timeouts,
    }


def _run_one(worker_id: int, job: dict, result_q, init: dict) -> None:
    index = job["index"]
    config = config_from_dict(job["config"])
    runner = _job_runner(job)
    runner.instruction_hook = Heartbeat(
        result_q, worker_id, index,
        interval_s=init.get("heartbeat_s", HEARTBEAT_INTERVAL_S),
    )
    metrics_ctx = obs.use_metrics() if init.get("metrics") else nullcontext()
    # With tracing on, the worker records into its own collector and ships
    # (wall_t0, events) with its terminal message; the parent rebases them
    # onto its timeline.  The worker:run span carries the parent-supplied
    # trace_args (job_id/trace_id) so the merged trace reads end-to-end.
    collector = obs.TraceCollector() if init.get("trace") else None
    trace_ctx = obs.use_tracer(collector) if collector is not None else nullcontext()
    span_args = dict(
        job.get("trace_args") or {},
        config=config.name, workload=job["workload"], worker=worker_id,
    )

    def job_stats() -> dict:
        stats = _job_stats(runner)
        if collector is not None:
            stats["trace"] = {
                "wall_t0": collector.wall_t0,
                "events": list(collector.events),
            }
        return stats

    try:
        with metrics_ctx, trace_ctx:
            with obs.span("worker:run", "worker", span_args):
                result = runner.run(config, job["workload"], job["n_instrs"])
    except BaseException as exc:
        # Containment boundary: *every* in-process failure — RunFailure,
        # ConfigError, genuine bugs — becomes a structured record and the
        # worker lives on.  Process-level faults never reach here.
        if runner.failures:
            record = runner.failures[-1]
        else:
            record = FailureRecord(
                config_name=config.name,
                workload=job["workload"],
                n_instrs=job["n_instrs"],
                error_type=type(exc).__name__,
                message=str(exc),
                elapsed_s=0.0,
                attempts=max(1, runner.stats.executed),
                attempt_errors=[repr(exc)],
            )
        result_q.put(("fail", worker_id, index, record.to_dict(), job_stats()))
        return
    result_q.put((
        "done", worker_id, index, result_to_dict(result), job_stats(),
    ))


def worker_main(worker_id: int, job_q, result_q, init: dict) -> None:
    """Worker process main loop: pull jobs until the ``None`` sentinel.

    Args:
        worker_id: parent-assigned id, tagged onto every message.
        job_q: this worker's private job queue (one in-flight job at a
            time, so the parent always knows which job a kill abandons).
        result_q: the shared message stream back to the parent.
        init: worker settings — ``heartbeat_s``, ``metrics`` (attach
            telemetry to results), ``trace`` (record spans and ship them
            with the terminal message) and ``log_level`` (ship log events).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    handler = None
    if init.get("log_level") is not None:
        handler = _ShippingHandler(result_q, worker_id, init["log_level"])
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(min(init["log_level"], root.level or init["log_level"]))
    log_event(logger, logging.DEBUG, "worker online", worker=worker_id,
              pid=os.getpid())
    try:
        while True:
            job = job_q.get()
            if job is None:
                break
            _run_one(worker_id, job, result_q, init)
    finally:
        if handler is not None:
            logging.getLogger("repro").removeHandler(handler)
        result_q.close()
