"""The resilient experiment runner: the single execution path for runs.

Every ``(config, workload, n_instrs)`` simulation in the experiment suite
goes through :meth:`ExperimentRunner.run`, which layers four behaviours over
the bare :class:`~repro.sim.simulator.Simulator`:

1. **Checkpoint/resume** — completed results are served from a
   :class:`~repro.runner.store.ResultStore`; with a checkpoint directory,
   each result is persisted the moment it completes, so an interrupted sweep
   resumes where it left off.
2. **Wall-clock deadlines** — a cooperative per-instruction check aborts
   runs that exceed ``timeout_s`` with :class:`~repro.errors.RunTimeoutError`
   (no threads, no signals: deterministic and test-friendly).
3. **Bounded retry with backoff** — transient failures are retried up to
   ``retries`` times with exponential backoff; config errors and timeouts
   are not retried (a deterministic simulator will fail the same way again).
4. **Result integrity checks** — a run that "succeeds" with non-finite or
   nonsensical metrics is treated as a failure, not checkpointed.

When a run is out of recovery options the runner raises
:class:`~repro.errors.RunFailure` and appends a structured
:class:`FailureRecord` to :attr:`ExperimentRunner.failures`; the experiment
CLI turns those into the failure report and a nonzero exit.
"""

from __future__ import annotations

import logging
import math
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

from .. import obs
from ..errors import (
    ConfigError,
    ResultIntegrityError,
    RunFailure,
    RunTimeoutError,
)
from ..obs import get_logger, log_event
from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from ..sim.simulator import Simulator
from .store import ResultStore

#: How many retired instructions between wall-clock deadline checks.
DEADLINE_CHECK_INTERVAL = 256

logger = get_logger("runner")


@dataclass
class RunnerStats:
    """Counters describing what the runner actually did (tests key off these)."""

    executed: int = 0        #: simulations actually run (attempts that started)
    completed: int = 0       #: runs that produced a valid result
    store_hits: int = 0      #: results served from the store without simulating
    cache_hits: int = 0      #: exact result-cache hits (no simulation)
    cache_near_hits: int = 0  #: near result-cache hits (estimates, no sim)
    retries: int = 0         #: re-attempts after a transient failure
    timeouts: int = 0        #: runs aborted by the wall-clock deadline
    failures: int = 0        #: runs abandoned after all recovery attempts


@dataclass
class FailureRecord:
    """One abandoned run, in the shape the failure report serializes."""

    config_name: str
    workload: str
    n_instrs: int
    error_type: str
    message: str
    elapsed_s: float
    attempts: int
    experiment: str | None = None   #: filled in by the CLI loop
    #: ``repr`` of the exception from *every* attempt, in order — the
    #: intermediate failures a retried run swallowed used to be lost;
    #: now each is recorded here and logged at WARNING as it happens.
    attempt_errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)


class Deadline:
    """Cooperative wall-clock deadline checked from the simulation loop.

    The simulator polls it with the retired-instruction index on every step
    of the warmup and measure loops plus every phase boundary; the clock is
    consulted every :data:`DEADLINE_CHECK_INTERVAL` retired instructions
    (an index of 0 — the phase-boundary convention — always checks), so a
    serial ``--timeout`` fires within a bounded number of instructions, not
    merely at phase boundaries.
    """

    def __init__(self, timeout_s: float, clock: Callable[[], float]) -> None:
        self.timeout_s = timeout_s
        self._clock = clock
        self._start = clock()

    def __call__(self, retired: int) -> None:
        if retired % DEADLINE_CHECK_INTERVAL:
            return
        elapsed = self._clock() - self._start
        if elapsed > self.timeout_s:
            raise RunTimeoutError(
                f"run exceeded {self.timeout_s:g}s wall-clock deadline "
                f"({elapsed:.1f}s elapsed)",
                elapsed_s=elapsed,
                timeout_s=self.timeout_s,
            )


def _chain(*hooks):
    hooks = tuple(h for h in hooks if h is not None)
    if not hooks:
        return None
    if len(hooks) == 1:
        return hooks[0]

    def chained(retired: int) -> None:
        for hook in hooks:
            hook(retired)

    return chained


def validate_result(result: RunResult) -> RunResult:
    """Sanity-check a finished run; raises :class:`ResultIntegrityError`."""
    for label, value in (
        ("cycles", result.cycles),
        ("avg_load_latency", result.avg_load_latency),
        ("code_stall_cycles", result.code_stall_cycles),
    ):
        if not math.isfinite(value):
            raise ResultIntegrityError(
                f"{result.config_name}/{result.workload}: non-finite "
                f"{label} ({value!r})"
            )
    if result.cycles <= 0 or result.instructions <= 0:
        raise ResultIntegrityError(
            f"{result.config_name}/{result.workload}: empty measurement "
            f"({result.instructions} instrs, {result.cycles} cycles)"
        )
    return result


class ExperimentRunner:
    """Executes simulations with checkpointing, deadlines and fault isolation.

    Args:
        store: result store (defaults to a fresh memory-only store).
        timeout_s: per-run wall-clock deadline; ``None`` disables it.
        retries: additional attempts after a transient failure.
        backoff_s: cap base of the exponential retry backoff: before
            attempt ``attempt+1`` the runner sleeps a *full-jitter* draw
            ``uniform(0, backoff_s * 2**attempt)``, so a fleet of workers
            hitting one shared transient fault (an NFS blip, a saturated
            disk) spreads its retries out instead of thundering back in
            lockstep at exactly the same instant.
        rng: uniform ``[0, 1)`` source for the jitter draw (defaults to
            ``random.random``); tests inject a deterministic callable —
            ``lambda: 1.0`` reproduces the old un-jittered ceiling.
        simulator_factory: ``config -> Simulator``-like; the fault-injection
            harness substitutes its wrapper here.
        clock / sleep: injectable time sources (tests use fakes).
        cache: optional content-addressed result cache
            (:class:`repro.cache.ResultCache`), consulted after a store
            miss and fed on every completion.  Exact hits are promoted
            into the store (so later lookups stay local); near hits are
            returned as estimates carrying ``telemetry["cache"]``
            provenance and are *never* written to the store.
        cache_near: allow near hits from ``cache`` (opt-in; requires the
            caller to tolerate estimate results with provenance).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        timeout_s: float | None = None,
        retries: int = 0,
        backoff_s: float = 0.25,
        rng: Callable[[], float] = random.random,
        simulator_factory: Callable[[SimConfig], Simulator] = Simulator,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        cache=None,
        cache_near: bool = False,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.rng = rng
        self.simulator_factory = simulator_factory
        self.clock = clock
        self.sleep = sleep
        self.cache = cache
        self.cache_near = bool(cache_near)
        self.stats = RunnerStats()
        self.failures: list[FailureRecord] = []
        #: Optional per-instruction callable chained into every attempt's
        #: ``on_instruction`` hook — the fleet worker installs its heartbeat
        #: here so liveness reporting rides the existing simulator hook.
        self.instruction_hook: Callable[[int], None] | None = None

    # ------------------------------------------------------------- running

    def run(self, config: SimConfig, workload: str, n_instrs: int) -> RunResult:
        """Run (or recall) one measurement; raises ``RunFailure`` when spent.

        A :class:`~repro.plugins.compose.Selection` activated via
        ``use_selection`` (the ``--prefetchers``/``--detector``/``--topology``
        CLI flags) re-composes the configuration here, so every experiment
        routed through a runner honours the overrides.

        :class:`~repro.errors.ConfigError` propagates as-is — an invalid
        machine is a caller bug, not a run-level fault to retry or absorb.
        """
        from ..plugins.compose import apply_active_selection

        config = apply_active_selection(config)
        config.validate()
        cached = self.store.get(config, workload, n_instrs)
        if cached is not None:
            self.stats.store_hits += 1
            self._cache_put(config, workload, n_instrs, cached)
            log_event(
                logger, logging.DEBUG, "served from store",
                config=config.name, workload=workload, n=n_instrs,
            )
            return cached
        hit = self._cache_lookup(config, workload, n_instrs)
        if hit is not None:
            if hit.near:
                self.stats.cache_near_hits += 1
                log_event(
                    logger, logging.INFO, "served near hit from cache",
                    config=config.name, workload=workload, n=n_instrs,
                    mode=hit.provenance.get("mode"),
                )
                # A near hit is an estimate for a *different* key: return
                # it (with its telemetry provenance) but never checkpoint
                # it as this point's result.
                return hit.result
            self.stats.cache_hits += 1
            # Promote the shared-cache result into the local store so the
            # rest of this campaign hits locally — and byte-identically.
            self.store.put(config, workload, n_instrs, hit.result)
            log_event(
                logger, logging.DEBUG, "served from result cache",
                config=config.name, workload=workload, n=n_instrs,
            )
            return hit.result

        start = self.clock()
        attempts = 0
        attempt_errors: list[str] = []
        while True:
            attempts += 1
            self.stats.executed += 1
            try:
                result = self._attempt(config, workload, n_instrs)
            except RunTimeoutError as exc:
                attempt_errors.append(repr(exc))
                self.stats.timeouts += 1
                log_event(
                    logger, logging.WARNING, "run timed out",
                    config=config.name, workload=workload,
                    attempt=attempts, error=repr(exc),
                )
                raise self._fail(
                    config, workload, n_instrs, exc, attempts, start,
                    attempt_errors,
                )
            except ConfigError:
                raise
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempt_errors.append(repr(exc))
                if attempts <= self.retries:
                    self.stats.retries += 1
                    # Full jitter: uniform over [0, exponential ceiling).
                    backoff = (
                        self.backoff_s * (2 ** (attempts - 1)) * self.rng()
                    )
                    log_event(
                        logger, logging.WARNING, "retrying after failure",
                        config=config.name, workload=workload,
                        attempt=attempts, max_attempts=self.retries + 1,
                        error=repr(exc), backoff_s=backoff,
                    )
                    self.sleep(backoff)
                    continue
                raise self._fail(
                    config, workload, n_instrs, exc, attempts, start,
                    attempt_errors,
                )
            self.stats.completed += 1
            self.store.put(config, workload, n_instrs, result)
            self._cache_put(config, workload, n_instrs, result)
            log_event(
                logger, logging.INFO, "run completed",
                config=config.name, workload=workload, n=n_instrs,
                attempts=attempts, ipc=round(result.ipc, 4),
                elapsed_s=round(self.clock() - start, 3),
            )
            return result

    # -------------------------------------------------------- result cache

    def _cache_lookup(self, config: SimConfig, workload: str, n_instrs: int):
        """Consult the shared result cache (best-effort: errors are misses)."""
        if self.cache is None:
            return None
        try:
            return self.cache.lookup(
                config, workload, n_instrs, near=self.cache_near
            )
        except OSError as exc:
            log_event(
                logger, logging.WARNING, "result-cache lookup failed",
                config=config.name, workload=workload, error=repr(exc),
            )
            return None

    def _cache_put(
        self, config: SimConfig, workload: str, n_instrs: int, result: RunResult
    ) -> None:
        """Feed the shared cache, best-effort.

        A cache-write failure must never fail the run: the store write —
        the durable copy that the exactly-once contract cares about — has
        already landed (and *its* failures do propagate, feeding the
        daemon's safe mode).
        """
        if self.cache is None:
            return
        try:
            self.cache.put(config, workload, n_instrs, result)
        except OSError as exc:
            log_event(
                logger, logging.WARNING, "result-cache write failed",
                config=config.name, workload=workload, error=repr(exc),
            )

    def _attempt(self, config: SimConfig, workload: str, n_instrs: int) -> RunResult:
        from ..plugins.workloads import is_mix, mix_names

        if is_mix(workload):
            # A multi-programmed mix runs on the shared-hierarchy driver.
            # It bypasses simulator_factory: fault wrappers target the
            # single-core Simulator surface, and the daemon rejects
            # inject_fault for mix jobs at admission.
            from ..sim.multicore import MultiCoreSimulator

            sim = MultiCoreSimulator(config, n_cores=len(mix_names(workload)))
        else:
            sim = self.simulator_factory(config)
        deadline = (
            Deadline(self.timeout_s, self.clock)
            if self.timeout_s is not None
            else None
        )
        # The deadline kwarg is only passed when armed, so simulator doubles
        # (tests, fault wrappers) without it in their signature keep working
        # on the timeout-free path.
        kwargs = {} if deadline is None else {"deadline": deadline}
        with obs.span(
            f"run:{config.name}/{workload}",
            cat="runner",
            args={"config": config.name, "workload": workload, "n": n_instrs},
        ):
            result = sim.run(
                workload,
                n_instrs,
                on_instruction=_chain(self.instruction_hook),
                **kwargs,
            )
        return validate_result(result)

    def _fail(
        self,
        config: SimConfig,
        workload: str,
        n_instrs: int,
        cause: BaseException,
        attempts: int,
        start: float,
        attempt_errors: list[str] | None = None,
    ) -> RunFailure:
        elapsed = self.clock() - start
        record = FailureRecord(
            config_name=config.name,
            workload=workload,
            n_instrs=n_instrs,
            error_type=type(cause).__name__,
            message=str(cause),
            elapsed_s=elapsed,
            attempts=attempts,
            attempt_errors=list(attempt_errors or []),
        )
        self.failures.append(record)
        self.stats.failures += 1
        log_event(
            logger, logging.ERROR, "run abandoned",
            config=config.name, workload=workload, attempts=attempts,
            error_type=record.error_type, message=record.message,
            attempt_errors=record.attempt_errors,
        )
        failure = RunFailure(
            f"{config.name}/{workload} failed after {attempts} attempt(s) "
            f"({record.error_type}: {record.message})",
            config_name=config.name,
            workload=workload,
            n_instrs=n_instrs,
            attempts=attempts,
            elapsed_s=elapsed,
        )
        failure.__cause__ = cause
        return failure

    # ------------------------------------------------------------- sweeps

    def sweep(
        self,
        configs: Iterable[SimConfig],
        workloads: Iterable[str],
        n_instrs: int,
    ) -> dict[str, dict[str, RunResult]]:
        """Run every workload on every configuration (checkpointed per run)."""
        workloads = list(workloads)
        return {
            cfg.name: {wl: self.run(cfg, wl, n_instrs) for wl in workloads}
            for cfg in configs
        }

    # ------------------------------------------------------------- reports

    def failure_report(self) -> dict:
        """Structured report of everything that failed under this runner."""
        return {
            "failures": [record.to_dict() for record in self.failures],
            "stats": asdict(self.stats),
        }
