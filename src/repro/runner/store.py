"""Disk-backed result store: the runner's checkpoint/resume substrate.

Results are keyed by ``(config fingerprint, workload fingerprint,
n_instrs)``.  The config fingerprint is a SHA-256 over the *canonical
serialized configuration* (:func:`repro.sim.serialization.config_to_dict`);
the workload fingerprint (:func:`repro.plugins.workloads
.workload_fingerprint`) hashes what the workload *is* — kernel + parameters
for synthetic specs, trace-file content for ingested traces, the member
tuple for a mix — so a re-registered or out-of-tree workload under a reused
name can never alias another workload's checkpoint.  Names are display-only:
they appear in file stems for humans, never as identity.

Compatibility: checkpoints written before workload fingerprints existed used
a name-keyed stem; :meth:`ResultStore.get` falls back to that legacy stem
(validating the payload's workload name) so old checkpoint dirs keep
resuming.

Layout: one JSON file per completed run under ``checkpoint_dir``, written
durably and atomically (:func:`repro.ioutil.atomic_write_json`: fsync'd
temp file + ``os.replace`` + directory fsync) so a crash at any instant —
including right after the rename — never leaves a half checkpoint that a
later ``--resume`` would trip over.  Unreadable or
wrong-schema files found while resuming are *quarantined* (renamed to
``*.corrupt`` with a WARNING) and counted, never fatal — a corrupt
checkpoint costs one re-simulation, not the campaign, and subsequent
resumes don't re-parse the same broken file.
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
import weakref
from pathlib import Path

from ..errors import CheckpointError
from ..ioutil import atomic_write_json, io_backend
from ..obs import get_logger, log_event
from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from ..sim.serialization import (
    RESULT_FORMAT_VERSION,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)

#: Schema version of the checkpoint envelope (the file around the result).
CHECKPOINT_FORMAT_VERSION = 1

_UNSAFE = re.compile(r"[^A-Za-z0-9._+-]+")

logger = get_logger("runner.store")


#: Process-wide fingerprint memo.  ``SimConfig`` is a frozen (hashable,
#: weakref-able) dataclass, so the digest of a given config object is
#: immutable — cache it once instead of re-serializing the full canonical
#: JSON on every submit/store/cache touch.  Weak keys keep campaign-sized
#: config churn from pinning dead configs in memory.
_FINGERPRINTS: "weakref.WeakKeyDictionary[SimConfig, str]" = (
    weakref.WeakKeyDictionary()
)


def config_fingerprint(config: SimConfig) -> str:
    """Stable hex digest of a configuration's canonical JSON form (memoized)."""
    fp = _FINGERPRINTS.get(config)
    if fp is None:
        canonical = json.dumps(config_to_dict(config), sort_keys=True)
        fp = hashlib.sha256(canonical.encode()).hexdigest()
        _FINGERPRINTS[config] = fp
    return fp


def _safe(name: str) -> str:
    return _UNSAFE.sub("_", name) or "unnamed"


def workload_fingerprint(workload: str) -> str:
    """Content digest of a workload reference (one keying scheme repo-wide)."""
    from ..plugins.workloads import workload_fingerprint as _wfp

    return _wfp(workload)


class ResultStore:
    """In-memory result cache with an optional on-disk checkpoint layer.

    Args:
        checkpoint_dir: directory for per-run JSON checkpoints; ``None``
            keeps the store memory-only (the default runner's behaviour,
            equivalent to the old per-process memoisation).
        resume: when true, previously checkpointed results are served from
            disk; when false an existing directory is only *written* to,
            never read (a fresh campaign that still checkpoints).
    """

    def __init__(
        self,
        checkpoint_dir: str | Path | None = None,
        *,
        resume: bool = False,
    ) -> None:
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.resume = resume
        self._memory: dict[tuple[str, str, int], RunResult] = {}
        #: Corrupt/wrong-schema checkpoint files skipped during reads.
        self.corrupt_skipped = 0
        #: Where each corrupt checkpoint was moved (``*.corrupt`` files).
        self.quarantined: list[Path] = []
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- keying

    def fingerprint(self, config: SimConfig) -> str:
        """The (process-wide memoized) :func:`config_fingerprint`."""
        return config_fingerprint(config)

    def _key(self, config: SimConfig, workload: str, n_instrs: int):
        return (self.fingerprint(config), workload_fingerprint(workload), n_instrs)

    def _path(self, config: SimConfig, workload: str, n_instrs: int) -> Path:
        assert self.checkpoint_dir is not None
        fp = self.fingerprint(config)
        wfp = workload_fingerprint(workload)
        stem = (
            f"{_safe(config.name)}--{_safe(workload)}--{n_instrs}"
            f"--{fp[:12]}--{wfp[:12]}"
        )
        return self.checkpoint_dir / f"{stem}.json"

    def _legacy_path(self, config: SimConfig, workload: str, n_instrs: int) -> Path:
        """The pre-workload-fingerprint stem (compat read path)."""
        assert self.checkpoint_dir is not None
        fp = self.fingerprint(config)
        stem = f"{_safe(config.name)}--{_safe(workload)}--{n_instrs}--{fp[:12]}"
        return self.checkpoint_dir / f"{stem}.json"

    # ------------------------------------------------------------- access

    def get(
        self, config: SimConfig, workload: str, n_instrs: int
    ) -> RunResult | None:
        """Return a stored result, or ``None`` when the run must execute."""
        key = self._key(config, workload, n_instrs)
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.checkpoint_dir is None or not self.resume:
            return None
        path = self._path(config, workload, n_instrs)
        expected_workload: str | None = None
        if not path.exists():
            # Compat: checkpoints written before workload fingerprints used
            # a name-keyed stem.  The payload's workload name is validated
            # (the legacy stem's known sanitisation-collision hazard), and
            # only files without a recorded workload fingerprint qualify —
            # one recorded under a *different* fingerprint belongs to a
            # different workload that merely shares the display name.
            path = self._legacy_path(config, workload, n_instrs)
            expected_workload = workload
            if not path.exists():
                return None
        try:
            result = self._read_checkpoint(path, expected_fingerprint=key[0])
            if expected_workload is not None:
                payload = json.loads(path.read_text())
                if payload.get("workload") != expected_workload or (
                    payload.get("workload_fingerprint") not in (None, key[1])
                ):
                    return None
        except (CheckpointError, OSError, json.JSONDecodeError) as exc:
            self.corrupt_skipped += 1
            moved_to = self._quarantine(path)
            log_event(
                logger, logging.WARNING, "quarantined corrupt checkpoint",
                path=str(path), error=str(exc),
                moved_to=str(moved_to) if moved_to else None,
            )
            return None
        self._memory[key] = result
        return result

    def put(
        self, config: SimConfig, workload: str, n_instrs: int, result: RunResult
    ) -> None:
        """Record one completed run (and checkpoint it if configured)."""
        key = self._key(config, workload, n_instrs)
        if self.checkpoint_dir is None:
            self._memory[key] = result
            return
        payload = {
            "checkpoint_version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": key[0],
            "workload_fingerprint": key[1],
            "config": config_to_dict(config),
            "workload": workload,
            "n_instrs": n_instrs,
            "result": result_to_dict(result),
        }
        # Durable atomic write: fsync'd temp + rename + directory fsync, so
        # a crash right after the replace cannot leave a truncated
        # checkpoint for a later --resume to quarantine.  The memory cache
        # is populated only *after* the write lands: a checkpoint that hit
        # ENOSPC/EIO must not leave a phantom cache entry that would let a
        # retry skip the re-write and ack a result with no durable copy.
        atomic_write_json(self._path(config, workload, n_instrs), payload)
        self._memory[key] = result

    def _quarantine(self, path: Path) -> Path | None:
        """Move a corrupt checkpoint aside so no later resume re-parses it.

        The file is renamed to ``<name>.corrupt`` (numbered on collision);
        the re-simulated result is then checkpointed under the original
        name.  A rename failure degrades to the old skip-and-count
        behaviour rather than aborting the resume.
        """
        target = path.with_suffix(path.suffix + ".corrupt")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_suffix(f"{path.suffix}.corrupt.{serial}")
        try:
            io_backend().replace(path, target)
        except OSError:
            return None
        self.quarantined.append(target)
        return target

    def _read_checkpoint(self, path: Path, expected_fingerprint: str) -> RunResult:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} is not an object")
        if payload.get("checkpoint_version") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version "
                f"{payload.get('checkpoint_version')!r}, expected "
                f"{CHECKPOINT_FORMAT_VERSION}"
            )
        if payload.get("fingerprint") != expected_fingerprint:
            raise CheckpointError(
                f"checkpoint {path} fingerprint mismatch (stale file name?)"
            )
        result_payload = payload.get("result")
        if (
            not isinstance(result_payload, dict)
            or result_payload.get("format_version") != RESULT_FORMAT_VERSION
        ):
            raise CheckpointError(f"checkpoint {path} has a bad result payload")
        try:
            return result_from_dict(result_payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path} failed to deserialize: {exc}"
            ) from exc

    # ------------------------------------------------------------- admin

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self) -> None:
        """Drop the in-memory layer (disk checkpoints are kept)."""
        self._memory.clear()
