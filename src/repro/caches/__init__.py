"""Cache substrate: set-associative caches, hierarchy, baseline prefetchers."""

from .cache import Cache, CacheLine, CacheStats
from .hierarchy import AccessResult, CacheHierarchy, HierarchyStats, Level, LevelSpec
from .prefetchers import L1StridePrefetcher, L2StreamPrefetcher
from .replacement import make_policy

__all__ = [
    "Cache",
    "CacheLine",
    "CacheStats",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyStats",
    "Level",
    "LevelSpec",
    "L1StridePrefetcher",
    "L2StreamPrefetcher",
    "make_policy",
]
