"""Baseline hardware prefetchers (present in all configurations).

The paper's baseline machine has two prefetchers that CATCH sits on top of:

* a **PC-based stride prefetcher at the L1** [41] with prefetch distance 1 —
  TACT-Deep-Self extends exactly this mechanism to deeper distances for
  critical PCs only;
* an **aggressive multi-stream prefetcher** [32], [35] that detects
  sequential streams within 4 KB pages and prefetches into the L2 (and LLC).

These train on the demand stream and issue through the hierarchy's
``prefetch_l1`` / ``prefetch_l2`` entry points.

Every prefetcher declares *when* it trains via the ``TRAIN_ON`` class
attribute the core's kernels dispatch on:

* ``"load"`` — ``train(pc, addr, now)`` on every demand load;
* ``"miss"`` — ``train(line, now)`` on every load the L1 missed.

New prefetchers register in :data:`repro.plugins.prefetchers.PREFETCHERS`
and become selectable via ``SimConfig.prefetchers`` / ``--prefetchers``
(see ``ARCHITECTURE.md`` for a worked example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..workloads.trace import LINE_SHIFT
from .hierarchy import CacheHierarchy

PAGE_SHIFT = 12
LINES_PER_PAGE = 1 << (PAGE_SHIFT - LINE_SHIFT)


@dataclass(slots=True)
class _StrideEntry:
    last_addr: int = -1
    stride: int = 0
    confidence: int = 0


class L1StridePrefetcher:
    """PC-indexed stride prefetcher, distance 1, prefetching into the L1.

    Args:
        core: core id this prefetcher belongs to.
        hierarchy: the shared cache hierarchy.
        table_size: number of tracked PCs (direct-mapped by PC hash).
        min_confidence: consecutive identical strides needed before issuing.
    """

    TRAIN_ON = "load"

    def __init__(
        self,
        core: int,
        hierarchy: CacheHierarchy,
        table_size: int = 256,
        min_confidence: int = 2,
    ) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.table_size = table_size
        self.min_confidence = min_confidence
        self._table: dict[int, _StrideEntry] = {}
        self.issued = 0
        obs.metrics().register_provider(
            f"prefetch.l1stride.core{core}",
            lambda: {"issued": self.issued, "tracked_pcs": len(self._table)},
        )

    def entry_for(self, pc: int) -> _StrideEntry | None:
        """Expose the learned entry for a PC (used by TACT-Deep-Self)."""
        return self._table.get(pc)

    def train(self, pc: int, addr: int, now: float) -> None:
        """Observe a demand load and possibly issue a distance-1 prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO capacity eviction stands in for direct-mapped conflict.
                self._table.pop(next(iter(self._table)))
            entry = _StrideEntry()
            self._table[pc] = entry
        if entry.last_addr >= 0:
            delta = addr - entry.last_addr
            if delta == entry.stride and delta != 0:
                entry.confidence = min(entry.confidence + 1, 3)
            else:
                entry.stride = delta
                entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.min_confidence and entry.stride != 0:
            target_line = (addr + entry.stride) >> LINE_SHIFT
            if target_line != addr >> LINE_SHIFT:
                self.hierarchy.prefetch_l1(self.core, target_line, now, pc=pc)
                self.issued += 1


@dataclass(slots=True)
class _Stream:
    page: int
    last_line: int      #: last line offset accessed within the page
    direction: int = 0  #: +1 ascending, -1 descending, 0 untrained
    confidence: int = 0


class L2StreamPrefetcher:
    """Multi-stream sequential prefetcher into the L2 (LLC when no L2).

    Tracks up to ``max_streams`` concurrently active 4 KB-page streams.  Once
    a stream's direction is confirmed twice, every subsequent access in the
    stream prefetches ``degree`` further lines ahead.
    """

    TRAIN_ON = "miss"

    def __init__(
        self,
        core: int,
        hierarchy: CacheHierarchy,
        max_streams: int = 16,
        degree: int = 2,
    ) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.max_streams = max_streams
        self.degree = degree
        self._streams: dict[int, _Stream] = {}
        self.issued = 0
        obs.metrics().register_provider(
            f"prefetch.l2stream.core{core}",
            lambda: {"issued": self.issued, "active_streams": len(self._streams)},
        )

    def train(self, line_addr: int, now: float) -> None:
        """Observe an L1 miss (the stream prefetcher trains below the L1)."""
        page = line_addr >> (PAGE_SHIFT - LINE_SHIFT)
        offset = line_addr & (LINES_PER_PAGE - 1)
        stream = self._streams.get(page)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                self._streams.pop(next(iter(self._streams)))
            self._streams[page] = _Stream(page=page, last_line=offset)
            return
        step = offset - stream.last_line
        if step == 0:
            return
        # Streams are *sequential-line* runs: a non-unit step means the
        # next-line prefetches would fetch lines the program never touches,
        # so confidence only builds on unit steps (bandwidth protection).
        direction = 1 if step > 0 else -1
        if step == direction:
            stream.direction = direction
            stream.confidence = min(stream.confidence + 1, 3)
        else:
            stream.direction = direction
            stream.confidence = 0
        stream.last_line = offset
        if stream.confidence >= 1:
            base = (page << (PAGE_SHIFT - LINE_SHIFT)) + offset
            for ahead in range(1, self.degree + 1):
                target_offset = offset + direction * ahead
                if 0 <= target_offset < LINES_PER_PAGE:
                    self.hierarchy.prefetch_l2(self.core, base + direction * ahead, now)
                    self.issued += 1


class NextLinePrefetcher:
    """One-block-lookahead prefetcher into the L1 (Smith's classic OBL).

    The simplest conventional baseline: whenever a demand load touches a
    *new* cache line, prefetch the sequentially next line.  No PC state, no
    confidence — the registry entry exists so CATCH/TACT can be compared
    against the cheapest hardware prefetcher that is not "nothing".
    """

    TRAIN_ON = "load"

    def __init__(self, core: int, hierarchy: CacheHierarchy) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self._last_line = -1
        self.issued = 0
        obs.metrics().register_provider(
            f"prefetch.nextline.core{core}",
            lambda: {"issued": self.issued},
        )

    def train(self, pc: int, addr: int, now: float) -> None:
        """Observe a demand load; issue line+1 on the first touch of a line."""
        line = addr >> LINE_SHIFT
        if line != self._last_line:
            self._last_line = line
            self.hierarchy.prefetch_l1(self.core, line + 1, now, pc=pc)
            self.issued += 1
