"""Set-associative cache with fill ready-times (MSHR-like in-flight modeling).

Every resident line carries a ``ready`` cycle: the time at which its fill
completes.  A demand access that finds the line present but not yet ready pays
the residual fill latency, which is how the timing model credits partially
timely prefetches (the paper's Figure 11 timeliness analysis depends on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from .replacement import ReplacementPolicy, make_policy


@dataclass(slots=True)
class CacheLine:
    """Metadata for one resident cache line."""

    tag: int
    ready: float = 0.0          #: cycle when the fill completes
    dirty: bool = False
    prefetched: bool = False    #: filled by a prefetch, not yet demand-hit
    pc: int = -1                #: PC that caused the fill (for stats)
    repl: int = 0               #: replacement policy metadata
    src: int = 0                #: Level the fill came from (in-flight hits
                                #: are attributed to this level, not L1)


@dataclass(slots=True)
class CacheStats:
    """Demand/prefetch activity counters for one cache."""

    hits: int = 0
    misses: int = 0
    inflight_hits: int = 0       #: hits on a line whose fill was in flight
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0     #: prefetched lines that saw a demand hit
    prefetch_unused: int = 0     #: prefetched lines evicted without a hit
    reads: int = 0               #: total read accesses (for power)
    writes: int = 0              #: total write accesses (for power)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class Cache:
    """A single set-associative cache array.

    Addresses handed to this class are *line* addresses (byte address >> 6);
    the hierarchy layer does the shifting.

    Args:
        name: label used in stats dumps (``L1D``, ``L2``, ``LLC`` ...).
        size_bytes: total capacity.
        assoc: associativity (ways).
        line_size: line size in bytes (default 64).
        latency: round-trip hit latency in cycles.
        replacement: replacement policy name (see ``repro.caches.replacement``).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        latency: int,
        line_size: int = 64,
        replacement: str = "lru",
        hashed_index: bool = False,
    ) -> None:
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.hashed_index = hashed_index
        # Paper LLC capacities (5.5/6.5/9.5 MB at 11 ways) do not give
        # power-of-2 set counts, so indexing is modulo, not a bit mask.
        self.num_sets = max(1, size_bytes // (assoc * line_size))
        self.size_bytes = self.num_sets * assoc * line_size
        self._sets: list[dict[int, CacheLine]] = [{} for _ in range(self.num_sets)]
        self.policy: ReplacementPolicy = make_policy(replacement)
        self.stats = CacheStats()
        # Registering with the no-op registry costs nothing; with a live one,
        # snapshots read the stats this cache keeps anyway (name-keyed, so a
        # rebuilt hierarchy replaces rather than leaks providers).
        obs.metrics().register_provider(f"cache.{name}", self._telemetry_snapshot)

    def _telemetry_snapshot(self) -> dict:
        """Stats counters plus derived rates, for the metrics registry."""
        out = {
            field_name: getattr(self.stats, field_name)
            for field_name in self.stats.__dataclass_fields__
        }
        out["hit_rate"] = self.stats.hit_rate
        out["occupancy"] = self.occupancy()
        return out

    # -- addressing -------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Set index: plain address bits (L1/L2 style) or, with
        ``hashed_index``, a Fibonacci hash (Skylake-LLC style) so power-of-2
        address strides spread over all sets instead of camping on a few."""
        if self.hashed_index:
            # 64-bit Fibonacci hashing: high address bits (e.g. the per-core
            # address-space offsets in MP runs) must influence the set too.
            h = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            return ((h >> 24) ^ (h >> 48)) % self.num_sets
        return line_addr % self.num_sets

    def _locate(self, line_addr: int) -> tuple[dict[int, CacheLine], int]:
        return self._sets[self.set_index(line_addr)], line_addr

    # -- queries (no state change) ----------------------------------------

    def contains(self, line_addr: int) -> bool:
        """True if the line is resident (regardless of fill completion)."""
        # set_index is inlined here and in access/fill: these run once or
        # more per simulated instruction and the call overhead shows up in
        # profiles (see benchmarks/bench_kernel.py).
        if self.hashed_index:
            h = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            index = ((h >> 24) ^ (h >> 48)) % self.num_sets
        else:
            index = line_addr % self.num_sets
        return line_addr in self._sets[index]

    def peek(self, line_addr: int) -> CacheLine | None:
        """Return the resident line without updating replacement state."""
        cache_set, tag = self._locate(line_addr)
        return cache_set.get(tag)

    # -- demand access ------------------------------------------------------

    def access(self, line_addr: int, now: float, *, write: bool = False) -> CacheLine | None:
        """Demand lookup: returns the line on hit (updating LRU), else None.

        Stats are updated; dirty bit is set on a write hit.
        """
        if self.hashed_index:
            h = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            index = ((h >> 24) ^ (h >> 48)) % self.num_sets
        else:
            index = line_addr % self.num_sets
        cache_set = self._sets[index]
        stats = self.stats
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        line = cache_set.get(line_addr)
        if line is None:
            stats.misses += 1
            return None
        stats.hits += 1
        if line.ready > now:
            stats.inflight_hits += 1
        if line.prefetched:
            stats.prefetch_useful += 1
            line.prefetched = False
        if write:
            line.dirty = True
        self.policy.on_hit(cache_set, line)
        return line

    # -- fills / evictions ---------------------------------------------------

    def fill(
        self,
        line_addr: int,
        ready: float,
        *,
        dirty: bool = False,
        prefetched: bool = False,
        pc: int = -1,
        src: int = 0,
    ) -> tuple[int, CacheLine] | None:
        """Install a line; returns the evicted ``(line_addr, CacheLine)`` if any.

        If the line is already resident the existing entry is refreshed (its
        ready time is only ever moved *earlier*, never later — a demand fill
        cannot slow down an in-flight prefetch).
        """
        if self.hashed_index:
            h = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            index = ((h >> 24) ^ (h >> 48)) % self.num_sets
        else:
            index = line_addr % self.num_sets
        cache_set = self._sets[index]
        stats = self.stats
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.ready = min(existing.ready, ready)
            existing.dirty = existing.dirty or dirty
            return None

        victim: tuple[int, CacheLine] | None = None
        if len(cache_set) >= self.assoc:
            vtag = self.policy.victim(cache_set)
            vline = cache_set.pop(vtag)
            stats.evictions += 1
            if vline.dirty:
                stats.dirty_evictions += 1
            if vline.prefetched:
                stats.prefetch_unused += 1
            victim = (vtag, vline)

        line = CacheLine(
            tag=line_addr, ready=ready, dirty=dirty, prefetched=prefetched,
            pc=pc, src=src,
        )
        cache_set[line_addr] = line
        self.policy.on_fill(cache_set, line)
        stats.fills += 1
        stats.writes += 1
        if prefetched:
            stats.prefetch_fills += 1
        return victim

    def invalidate(self, line_addr: int) -> CacheLine | None:
        """Remove a line (back-invalidation); returns it if it was resident."""
        cache_set, tag = self._locate(line_addr)
        line = cache_set.pop(tag, None)
        if line is not None:
            self.stats.invalidations += 1
        return line

    # -- introspection -------------------------------------------------------

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> list[int]:
        """All resident line addresses (for invariant checks in tests)."""
        out: list[int] = []
        for cache_set in self._sets:
            out.extend(cache_set)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size_bytes >> 10}KB, {self.assoc}-way, "
            f"lat={self.latency})"
        )
