"""Multi-level cache hierarchy with inclusive/exclusive LLC policies.

Reproduces the two baseline organisations of the paper:

* **Skylake-server-like** (Section V): private 32 KB L1I/L1D (5-cycle), private
  1 MB L2 (15-cycle round trip, non-inclusive of L1, no back-invalidates), and
  a shared 11-way *exclusive* LLC (40-cycle round trip).  An LLC hit moves the
  line into the L2 (deallocating the LLC copy); an L2 victim is filled into
  the LLC; memory fills bypass the LLC.
* **Skylake-client-like** (Section VI-F): 256 KB L2 with a shared *inclusive*
  LLC — every fill also allocates in the LLC, and an LLC eviction
  back-invalidates the line from all cores' L1/L2.

A two-level configuration (``l2=None``) models the CATCH "noL2" designs; the
LLC is then mostly-inclusive of the tiny L1 (no back-invalidates), which is
the natural design once the L2 is gone.

Timing: every resident line carries a fill ``ready`` time, so demand accesses
that race an in-flight (prefetch) fill pay only the residual latency.  Ring
hop latency is folded into the configured LLC round-trip (the paper quotes
round-trip numbers); the ring model is still invoked for traffic/energy
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable

from .. import obs
from ..interconnect.ring import RingInterconnect
from ..memory.controller import MemoryController
from .cache import Cache


class Level(IntEnum):
    """Where a request was served from."""

    L1 = 0
    L2 = 1
    LLC = 2
    MEM = 3


#: Drop speculative DRAM reads once the data bus is booked this many cycles
#: ahead (memory-controller prefetch throttling, cf. FDP [32]).
PREFETCH_BACKLOG_LIMIT = 200

#: Optional per-access latency override, used by the oracle studies of
#: Figure 4 (e.g. "serve all non-critical L2 hits at LLC latency").  Receives
#: ``(pc, level, latency)`` and returns the latency to charge.
LatencyPolicy = Callable[[int, Level, float], float]


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access."""

    latency: float
    level: Level          #: level that owned the data (L1 includes in-flight)
    inflight: bool = False  #: the line was still being filled when hit


@dataclass(slots=True)
class HierarchyStats:
    """Per-core demand/prefetch serve counts (loads and code separately)."""

    load_served: dict[Level, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in Level}
    )
    code_served: dict[Level, int] = field(
        default_factory=lambda: {lvl: 0 for lvl in Level}
    )
    load_latency_sum: float = 0.0
    stores: int = 0
    l1_prefetches: int = 0
    l2_prefetches: int = 0

    @property
    def loads(self) -> int:
        return sum(self.load_served.values())

    @property
    def l1_load_hit_rate(self) -> float:
        total = self.loads
        return self.load_served[Level.L1] / total if total else 0.0

    @property
    def avg_load_latency(self) -> float:
        total = self.loads
        return self.load_latency_sum / total if total else 0.0


@dataclass(frozen=True)
class LevelSpec:
    """Size/latency description of one cache level.

    ``replacement`` names an entry in the ``repro.plugins`` ``POLICIES``
    registry (``python -m repro.sim plugins --family replacement-policies``);
    ``SimConfig.validate()`` resolves it eagerly, so an unknown name fails
    at configuration time with a did-you-mean rather than at first access.
    """

    size_kb: float
    assoc: int
    latency: int
    replacement: str = "lru"
    hashed_index: bool = False

    def build(self, name: str, extra_latency: int = 0) -> Cache:
        return Cache(
            name,
            int(self.size_kb * 1024),
            self.assoc,
            self.latency + extra_latency,
            replacement=self.replacement,
            hashed_index=self.hashed_index,
        )


class CacheHierarchy:
    """The full on-die cache system shared by ``n_cores`` cores.

    Args:
        n_cores: number of cores (private L1s/L2s are replicated per core).
        l1i, l1d: per-core L1 specs.
        l2: per-core private L2 spec, or ``None`` for a two-level hierarchy.
        llc: shared LLC spec, or ``None`` (no LLC — oracle studies only).
        llc_policy: ``"exclusive"`` or ``"inclusive"`` (of the private L2).
        memory: memory controller (a default DDR4-2400 one if omitted).
        extra_latency: optional dict mapping ``Level`` to added cycles
            (latency-sensitivity studies, Figures 3 and 15).
    """

    def __init__(
        self,
        n_cores: int,
        l1i: LevelSpec,
        l1d: LevelSpec,
        l2: LevelSpec | None,
        llc: LevelSpec | None,
        llc_policy: str = "exclusive",
        memory: MemoryController | None = None,
        ring: RingInterconnect | None = None,
        extra_latency: dict[Level, int] | None = None,
    ) -> None:
        if llc_policy not in ("exclusive", "inclusive"):
            raise ValueError(f"unknown llc_policy {llc_policy!r}")
        extra = extra_latency or {}
        self.n_cores = n_cores
        self.llc_policy = llc_policy
        self.l1i = [
            l1i.build(f"L1I{c}", extra.get(Level.L1, 0)) for c in range(n_cores)
        ]
        self.l1d = [
            l1d.build(f"L1D{c}", extra.get(Level.L1, 0)) for c in range(n_cores)
        ]
        self.l2 = (
            [l2.build(f"L2.{c}", extra.get(Level.L2, 0)) for c in range(n_cores)]
            if l2
            else None
        )
        self.llc = llc.build("LLC", extra.get(Level.LLC, 0)) if llc else None
        self.memory = memory or MemoryController()
        self.ring = ring or RingInterconnect(n_cores)
        self.stats = [HierarchyStats() for _ in range(n_cores)]
        self.latency_policy: LatencyPolicy | None = None
        # Observability: bind a load-latency histogram only when a live
        # registry is active, so the disabled hot path pays one None check.
        registry = obs.metrics()
        if registry.enabled:
            self._load_lat_hist = registry.histogram(
                "hierarchy.load_latency_cycles", obs.LOAD_LATENCY_BUCKETS
            )
            registry.register_provider("hierarchy", self._telemetry_snapshot)
        else:
            self._load_lat_hist = None

    def reset_stats(self) -> None:
        """Zero all activity counters while keeping cache/DRAM state.

        Called at the warmup/measurement boundary so reported statistics
        cover only the measured region (standard sampling methodology).
        """
        self.stats = [HierarchyStats() for _ in range(self.n_cores)]
        for caches in (self.l1i, self.l1d, self.l2 or []):
            for cache in caches:
                cache.stats.reset()
        if self.llc is not None:
            self.llc.stats.reset()
        self.ring.stats = type(self.ring.stats)()
        self.memory.traffic = type(self.memory.traffic)()
        self.memory.dram.stats = type(self.memory.dram.stats)()

    def _telemetry_snapshot(self) -> dict:
        """Per-core serve/latency counters for the metrics registry."""
        return {
            f"core{c}": {
                "loads": stats.loads,
                "load_served": {lvl.name: n for lvl, n in stats.load_served.items()},
                "code_served": {lvl.name: n for lvl, n in stats.code_served.items()},
                "avg_load_latency": stats.avg_load_latency,
                "l1_load_hit_rate": stats.l1_load_hit_rate,
                "stores": stats.stores,
                "l1_prefetches": stats.l1_prefetches,
                "l2_prefetches": stats.l2_prefetches,
            }
            for c, stats in enumerate(self.stats)
        }

    # ------------------------------------------------------------------ util

    def _charge(self, pc: int, level: Level, latency: float) -> float:
        if self.latency_policy is not None:
            return self.latency_policy(pc, level, latency)
        return latency

    @staticmethod
    def _residual(line_ready: float, now: float, base: float) -> tuple[float, bool]:
        """Latency for a (possibly in-flight) hit: ``max(base, ready - now)``."""
        if line_ready > now:
            return max(base, line_ready - now), True
        return base, False

    # ------------------------------------------------------------ fill paths

    def _l1_fill(
        self, l1: Cache, core: int, line_addr: int, ready: float,
        *, dirty: bool = False, prefetched: bool = False, pc: int = -1,
        src: Level = Level.L1,
    ) -> None:
        """Fill into an L1 and handle its victim."""
        victim = l1.fill(
            line_addr, ready, dirty=dirty, prefetched=prefetched, pc=pc, src=int(src)
        )
        if victim is None:
            return
        vaddr, vline = victim
        if not vline.dirty:
            return  # clean L1 victims are silently dropped
        if self.l2 is not None:
            l2 = self.l2[core]
            resident = l2.peek(vaddr)
            if resident is not None:
                resident.dirty = True
                l2.stats.writes += 1
            else:
                # Allocate on writeback; the L2 victim cascades outward.
                self._l2_fill(core, vaddr, ready, dirty=True)
        elif self.llc is not None:
            resident = self.llc.peek(vaddr)
            self.ring.data(core, vaddr)
            if resident is not None:
                resident.dirty = True
                self.llc.stats.writes += 1
            else:
                self._llc_fill(core, vaddr, ready, dirty=True)
        else:
            self.memory.write(vaddr, ready)

    def _l2_fill(
        self, core: int, line_addr: int, ready: float,
        *, dirty: bool = False, prefetched: bool = False,
    ) -> None:
        """Fill into the private L2 and handle its victim."""
        assert self.l2 is not None
        victim = self.l2[core].fill(line_addr, ready, dirty=dirty, prefetched=prefetched)
        if victim is None:
            return
        vaddr, vline = victim
        if self.llc is None:
            if vline.dirty:
                self.memory.write(vaddr, ready)
            return
        if self.llc_policy == "exclusive":
            # Every L2 victim (clean or dirty) allocates into the LLC.
            self.ring.data(core, vaddr)
            self._llc_fill(core, vaddr, ready, dirty=vline.dirty)
        else:
            # Inclusive LLC already holds the line; just update dirtiness.
            resident = self.llc.peek(vaddr)
            if vline.dirty:
                self.ring.data(core, vaddr)
                if resident is not None:
                    resident.dirty = True
                    self.llc.stats.writes += 1
                else:  # inclusion was broken by an earlier LLC eviction
                    self.memory.write(vaddr, ready)

    def _llc_fill(
        self, core: int, line_addr: int, ready: float, *, dirty: bool = False
    ) -> None:
        """Fill into the shared LLC and handle its victim."""
        assert self.llc is not None
        victim = self.llc.fill(line_addr, ready, dirty=dirty)
        if victim is None:
            return
        vaddr, vline = victim
        vdirty = vline.dirty
        if self.llc_policy == "inclusive":
            # Back-invalidate the line from every core's private caches.
            for c in range(self.n_cores):
                for private in (self.l1i[c], self.l1d[c]):
                    inv = private.invalidate(vaddr)
                    if inv is not None and inv.dirty:
                        vdirty = True
                if self.l2 is not None:
                    inv = self.l2[c].invalidate(vaddr)
                    if inv is not None and inv.dirty:
                        vdirty = True
        if vdirty:
            self.memory.write(vaddr, ready)

    # -------------------------------------------------------------- lookups

    def _outer_lookup(
        self, core: int, line_addr: int, now: float, *, code: bool,
    ) -> tuple[float, Level, bool]:
        """Resolve a request that missed the L1: L2 -> LLC -> memory.

        Returns ``(latency, level, inflight)``.  Updates all cache state
        (moves/fills at outer levels) but does NOT fill the L1 — callers do
        that so they can attach prefetch metadata.
        """
        # L2
        if self.l2 is not None:
            l2 = self.l2[core]
            line = l2.access(line_addr, now)
            if line is not None:
                lat, inflight = self._residual(line.ready, now, l2.latency)
                return lat, Level.L2, inflight
        # LLC (over the ring)
        if self.llc is not None:
            self.ring.request(core, line_addr)
            line = self.llc.access(line_addr, now)
            if line is not None:
                self.ring.data(core, line_addr)
                lat, inflight = self._residual(line.ready, now, self.llc.latency)
                ready = now + lat
                if self.llc_policy == "exclusive" and self.l2 is not None:
                    # Exclusive: the line moves from the LLC into the L2.
                    dirty = line.dirty
                    self.llc.invalidate(line_addr)
                    self._l2_fill(core, line_addr, ready, dirty=dirty)
                elif self.l2 is not None:
                    self._l2_fill(core, line_addr, ready)
                return lat, Level.LLC, inflight
        # Memory
        llc_lat = self.llc.latency if self.llc is not None else 0
        mem_lat = self.memory.read(line_addr, now + llc_lat)
        lat = llc_lat + mem_lat
        ready = now + lat
        if self.llc is not None:
            self.ring.data(core, line_addr)
        if self.llc_policy == "inclusive" and self.llc is not None:
            self._llc_fill(core, line_addr, ready)
        elif self.llc is not None and self.l2 is None:
            # Two-level hierarchy: memory fills allocate in the LLC too.
            self._llc_fill(core, line_addr, ready)
        if self.l2 is not None:
            self._l2_fill(core, line_addr, ready)
        return lat, Level.MEM, False

    # --------------------------------------------------------------- demand

    def load(self, core: int, pc: int, line_addr: int, now: float) -> AccessResult:
        """Demand data load; returns latency and serving level.

        A hit on a line whose fill is still in flight is attributed to the
        level the fill came from (the load effectively pays that level's
        latency), which is what the criticality detector must see.
        """
        stats = self.stats[core]
        l1 = self.l1d[core]
        line = l1.access(line_addr, now)
        if line is not None:
            # _residual and _charge inlined: this is the per-load hot path.
            lat = l1.latency
            ready = line.ready
            if ready > now:
                inflight = True
                resid = ready - now
                if resid > lat:
                    lat = resid
            else:
                inflight = False
            level = Level(line.src) if inflight and line.src else Level.L1
            if self.latency_policy is not None:
                lat = self.latency_policy(pc, level, lat)
            stats.load_served[level] += 1
            stats.load_latency_sum += lat
            if self._load_lat_hist is not None:
                self._load_lat_hist.record(lat)
            return AccessResult(lat, level, inflight)
        lat, level, inflight = self._outer_lookup(core, line_addr, now, code=False)
        if self.latency_policy is not None:
            lat = self.latency_policy(pc, level, lat)
        self._l1_fill(l1, core, line_addr, now + lat, pc=pc, src=level)
        stats.load_served[level] += 1
        stats.load_latency_sum += lat
        if self._load_lat_hist is not None:
            self._load_lat_hist.record(lat)
        return AccessResult(lat, level, inflight)

    def store(self, core: int, pc: int, line_addr: int, now: float) -> AccessResult:
        """Demand store (write-allocate, write-back)."""
        self.stats[core].stores += 1
        l1 = self.l1d[core]
        line = l1.access(line_addr, now, write=True)
        if line is not None:
            base, inflight = self._residual(line.ready, now, l1.latency)
            return AccessResult(base, Level.L1, inflight)
        lat, level, inflight = self._outer_lookup(core, line_addr, now, code=False)
        self._l1_fill(l1, core, line_addr, now + lat, dirty=True, pc=pc, src=level)
        return AccessResult(lat, level, inflight)

    def code_fetch(self, core: int, code_line: int, now: float) -> AccessResult:
        """Instruction fetch through the code L1."""
        l1i = self.l1i[core]
        line = l1i.access(code_line, now)
        if line is not None:
            base, inflight = self._residual(line.ready, now, l1i.latency)
            level = Level(line.src) if inflight and line.src else Level.L1
            self.stats[core].code_served[level] += 1
            return AccessResult(base, level, inflight)
        lat, level, inflight = self._outer_lookup(core, code_line, now, code=True)
        self._l1_fill(l1i, core, code_line, now + lat, src=level)
        self.stats[core].code_served[level] += 1
        return AccessResult(lat, level, inflight)

    # ------------------------------------------------------------ prefetches

    def prefetch_l1(
        self, core: int, line_addr: int, now: float, pc: int = -1, *, code: bool = False
    ) -> tuple[Level, float] | None:
        """Prefetch a line into the L1 (data or code).

        This is the L1 fill entry point for every prefetcher that targets
        the L1: the TACT components and any core-scope ``PREFETCHERS``
        registry entry (in-tree ``next-line``/``ip-stride`` or out-of-tree
        via ``$REPRO_PLUGINS`` — see ARCHITECTURE.md).  Returns the source
        level and the fill latency, or ``None`` if the line is already in
        the L1 (no prefetch issued).
        """
        l1 = self.l1i[core] if code else self.l1d[core]
        if l1.contains(line_addr):
            return None
        if (
            self.where(core, line_addr) is None
            and self.memory.backlog(now) > PREFETCH_BACKLOG_LIMIT
        ):
            return None  # DRAM congested: drop the speculative read
        self.stats[core].l1_prefetches += 1
        lat, level, _ = self._outer_lookup(core, line_addr, now, code=code)
        self._l1_fill(l1, core, line_addr, now + lat, prefetched=True, pc=pc, src=level)
        return level, lat

    def prefetch_l2(self, core: int, line_addr: int, now: float) -> None:
        """Baseline stream prefetch into the L2 (and LLC when inclusive).

        Skipped when the line is already on-die at the L2 level or inner,
        and dropped entirely when DRAM is congested (prefetch throttling).
        In a two-level hierarchy the stream prefetcher fills the LLC instead.
        """
        if self.memory.backlog(now) > PREFETCH_BACKLOG_LIMIT:
            return
        self.stats[core].l2_prefetches += 1
        if self.l2 is not None:
            l2 = self.l2[core]
            if l2.contains(line_addr) or self.l1d[core].contains(line_addr):
                return
            if self.llc is not None and self.llc.contains(line_addr):
                return  # already on-die; the demand path will move it in
            mem_lat = self.memory.read(line_addr, now)
            ready = now + mem_lat
            if self.llc is not None:
                self.ring.data(core, line_addr)
            self._l2_fill(core, line_addr, ready, prefetched=True)
            if self.llc is not None and self.llc_policy == "inclusive":
                self._llc_fill(core, line_addr, ready)
        elif self.llc is not None:
            if (
                self.llc.contains(line_addr)
                or self.l1d[core].contains(line_addr)
            ):
                return
            mem_lat = self.memory.read(line_addr, now)
            self.ring.data(core, line_addr)
            self._llc_fill(core, line_addr, now + mem_lat)

    # ----------------------------------------------------------- inspection

    def where(self, core: int, line_addr: int) -> Level | None:
        """Innermost level currently holding the line (None = memory only)."""
        if self.l1d[core].contains(line_addr) or self.l1i[core].contains(line_addr):
            return Level.L1
        if self.l2 is not None and self.l2[core].contains(line_addr):
            return Level.L2
        if self.llc is not None and self.llc.contains(line_addr):
            return Level.LLC
        return None

    def serve_latency(self, core: int, line_addr: int) -> float:
        """Latency a demand load would pay right now (no state change)."""
        level = self.where(core, line_addr)
        if level is Level.L1:
            return self.l1d[core].latency
        if level is Level.L2:
            assert self.l2 is not None
            return self.l2[core].latency
        if level is Level.LLC:
            assert self.llc is not None
            return self.llc.latency
        llc_lat = self.llc.latency if self.llc is not None else 0
        return llc_lat + (self.memory.fixed_latency or 160)

    def check_inclusion(self) -> list[str]:
        """Verify inclusion/exclusion invariants; returns violation strings.

        Used by property tests: under the inclusive policy every line in a
        private cache must be in the LLC; under the exclusive policy no line
        may be in both an L2 and the LLC.
        """
        problems: list[str] = []
        if self.llc is None:
            return problems
        if self.llc_policy == "inclusive":
            for c in range(self.n_cores):
                privates = [self.l1i[c], self.l1d[c]]
                if self.l2 is not None:
                    privates.append(self.l2[c])
                for cache in privates:
                    for addr in cache.resident_lines():
                        if not self.llc.contains(addr):
                            problems.append(f"{cache.name}: {addr:#x} not in LLC")
        elif self.l2 is not None:
            for c in range(self.n_cores):
                for addr in self.l2[c].resident_lines():
                    if self.llc.contains(addr):
                        problems.append(f"L2.{c}: {addr:#x} duplicated in LLC")
        return problems
