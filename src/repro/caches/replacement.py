"""Replacement policies for the set-associative cache model.

Policies operate on one cache set at a time.  A set is an ordered mapping
``tag -> CacheLine``; the policy maintains whatever per-line metadata it needs
on the line's ``repl`` field and selects a victim when the set is full.

LRU is the baseline policy used throughout the paper's hierarchy.  SRRIP and
NRU are provided for the design-space ablations (the paper cites RRIP-family
work [18] as complementary), and Random is a useful degenerate reference.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Protocol

from ..plugins.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .cache import CacheLine


class ReplacementPolicy(Protocol):
    """Interface implemented by all replacement policies."""

    def on_fill(self, cache_set: dict[int, "CacheLine"], line: "CacheLine") -> None:
        """Initialise metadata for a newly filled line."""

    def on_hit(self, cache_set: dict[int, "CacheLine"], line: "CacheLine") -> None:
        """Update metadata on a demand hit."""

    def victim(self, cache_set: dict[int, "CacheLine"]) -> int:
        """Return the tag of the line to evict from a full set."""


class LRUPolicy:
    """Least recently used: per-line monotonic timestamp."""

    def __init__(self) -> None:
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def on_fill(self, cache_set, line) -> None:
        line.repl = self._tick()

    def on_hit(self, cache_set, line) -> None:
        line.repl = self._tick()

    def victim(self, cache_set) -> int:
        # Explicit scan instead of min(key=lambda ...): this runs once per
        # eviction and the lambda allocation/dispatch is measurable in the
        # kernel benchmark.  Strict < keeps min()'s first-minimal tie-break.
        best_tag = -1
        best = None
        for tag, line in cache_set.items():
            repl = line.repl
            if best is None or repl < best:
                best = repl
                best_tag = tag
        return best_tag


class MRUInsertLRUPolicy(LRUPolicy):
    """LRU with insertion at LRU position (LIP) — thrash-resistant variant.

    Used by the ablation benchmarks to show replacement policy is orthogonal
    to CATCH.
    """

    def on_fill(self, cache_set, line) -> None:
        # Insert at LRU: pick a timestamp older than everything resident.
        if cache_set:
            line.repl = min(entry.repl for entry in cache_set.values()) - 1
        else:
            line.repl = self._tick()


class RandomPolicy:
    """Random replacement with a deterministic per-cache RNG."""

    def __init__(self, seed: int = 0xCA7C4) -> None:
        self._rng = random.Random(seed)

    def on_fill(self, cache_set, line) -> None:
        line.repl = 0

    def on_hit(self, cache_set, line) -> None:
        pass

    def victim(self, cache_set) -> int:
        return self._rng.choice(list(cache_set))


class SRRIPPolicy:
    """Static re-reference interval prediction (Jaleel et al., ISCA'10).

    Lines are inserted with a *long* re-reference prediction value (RRPV),
    promoted to 0 on hit, and the victim is a line with the maximal RRPV
    (aging all lines when none qualifies).
    """

    def __init__(self, bits: int = 2) -> None:
        self.max_rrpv = (1 << bits) - 1

    def on_fill(self, cache_set, line) -> None:
        line.repl = self.max_rrpv - 1

    def on_hit(self, cache_set, line) -> None:
        line.repl = 0

    def victim(self, cache_set) -> int:
        while True:
            for tag, line in cache_set.items():
                if line.repl >= self.max_rrpv:
                    return tag
            for line in cache_set.values():
                line.repl += 1


class NRUPolicy:
    """Not-recently-used: single reference bit per line."""

    def on_fill(self, cache_set, line) -> None:
        line.repl = 1

    def on_hit(self, cache_set, line) -> None:
        line.repl = 1

    def victim(self, cache_set) -> int:
        for tag, line in cache_set.items():
            if not line.repl:
                return tag
        # All referenced: clear and evict the first.
        for line in cache_set.values():
            line.repl = 0
        return next(iter(cache_set))


#: Registry of replacement policies; entries are zero-argument policy
#: classes.  Lives here (not in ``repro.plugins``) because the cache model
#: itself resolves policies at build time; ``repro.plugins`` re-exports it
#: alongside the other component registries.
POLICIES: Registry[type] = Registry("replacement policy")
POLICIES.register("lru", LRUPolicy, summary="least recently used (paper baseline)")
POLICIES.register("lip", MRUInsertLRUPolicy, summary="LRU with insertion at LRU position (thrash-resistant)")
POLICIES.register("random", RandomPolicy, summary="random victim, deterministic per-cache RNG")
POLICIES.register("srrip", SRRIPPolicy, summary="static re-reference interval prediction (RRIP family)")
POLICIES.register("nru", NRUPolicy, summary="not-recently-used single reference bit")


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registered name.

    Unknown names raise :class:`~repro.errors.ConfigError` (a ``ValueError``
    subclass) listing the registered policies with a did-you-mean hint.
    """
    return POLICIES.get(name)()
