"""Content-addressed result cache tier (see ARCHITECTURE.md, "Result cache").

:class:`ResultCache` layers cross-campaign reuse over the per-campaign
checkpoint store: exact hits return stored results byte-identically with
``cache_hit`` provenance; near hits (opt-in) serve quick estimates with
explicit ``near_hit`` provenance.  ``python -m repro.cache`` administers a
cache directory (``ls``/``stats``/``gc``/``pin``/``unpin``).

Consumers wire a cache in with the shared argparse helpers below — the
experiment CLI (``python -m repro.experiments ... --cache-dir``) and the
service daemon (``python -m repro.service serve --cache-dir``) accept the
same flags and build the same object.
"""

from __future__ import annotations

import argparse

from .result_cache import (
    CACHE_FORMAT_VERSION,
    CacheHit,
    CacheStats,
    ResultCache,
    neighbor_param,
)


def add_cache_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--cache-*`` flags (one vocabulary everywhere)."""
    group = parser.add_argument_group("result cache (see repro.cache)")
    group.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache shared across campaigns: "
             "exact (config, workload, n_instrs) re-runs are served from "
             "DIR instead of re-simulating",
    )
    group.add_argument(
        "--cache-near", action="store_true",
        help="also serve *near* hits (same point at a lower n_instrs, or "
             "one numeric knob away) as quick estimates carrying explicit "
             "near_hit provenance; off by default so figures never "
             "silently mix estimate and exact data",
    )
    group.add_argument(
        "--cache-max-mb", type=float, metavar="M",
        help="byte budget for --cache-dir; exceeding it evicts "
             "least-recently-used unpinned entries",
    )


def cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    """Build the cache an invocation's ``--cache-*`` flags describe."""
    if not getattr(args, "cache_dir", None):
        if getattr(args, "cache_near", False):
            raise SystemExit("--cache-near requires --cache-dir")
        if getattr(args, "cache_max_mb", None) is not None:
            raise SystemExit("--cache-max-mb requires --cache-dir")
        return None
    max_bytes = (
        int(args.cache_max_mb * 1024 * 1024)
        if getattr(args, "cache_max_mb", None) is not None
        else None
    )
    return ResultCache(
        args.cache_dir,
        near=bool(getattr(args, "cache_near", False)),
        max_bytes=max_bytes,
    )


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheHit",
    "CacheStats",
    "ResultCache",
    "add_cache_args",
    "cache_from_args",
    "neighbor_param",
]
