"""Content-addressed result cache: cross-campaign reuse of measurements.

The cache is a tier *above* the per-campaign checkpoint store
(:mod:`repro.runner.store`): where a store answers "did **this campaign**
already run this point?", the cache answers "did **anyone, ever** run it?".
Entries are keyed by ``(config fingerprint, workload fingerprint,
n_instrs)`` — the config fingerprint is the SHA-256 of the canonical config
JSON (:func:`repro.runner.store.config_fingerprint`), the workload
fingerprint (:func:`repro.plugins.workloads.workload_fingerprint`) the
SHA-256 of the workload's *content* (kernel + parameters, trace-file bytes,
or a mix's member tuple).  The key is therefore a full content address: any
parameter change produces a different key, two machines that merely share a
``name`` never collide, and — since workload names are display-only — two
*workloads* that share (or sanitise to) the same name never collide either.

Entries written before workload fingerprints existed used name-keyed stems;
lookups fall back to those legacy stems (validating the payload's workload
name), so an existing cache directory keeps serving exact hits without
migration.  Legacy entries do not participate in *near* matching — re-run
(or re-``put``) a point once to upgrade its entry.

Two kinds of answers:

* **Exact hits** — same key.  The stored :class:`RunResult` is returned
  untouched, so a consumer that re-checkpoints it produces byte-identical
  JSON; the ``{"cache_hit": True}`` provenance travels in
  :attr:`CacheHit.provenance`, never inside the result payload.
* **Near hits** (opt-in via ``near=True`` / ``--cache-near``) — a related
  measurement served as a *quick estimate*: the same point at a **lower**
  ``n_instrs``, or a machine differing in exactly **one numeric parameter**
  (a neighboring value of a single swept knob).  The returned result is a
  *copy* whose ``telemetry["cache"]`` carries
  ``{near_hit, source_key, requested_n_instrs, ...}`` provenance, so
  estimate data can never silently mix with exact data.  Near results must
  never be written back into a store or the cache under the requested key.

Durability and hygiene mirror the checkpoint store: entries are written
with :func:`repro.ioutil.atomic_write_json` (first write wins — the cache
is content-addressed, so a re-put of the same key is a no-op), unreadable
or wrong-schema entries are *quarantined* to ``*.corrupt`` (numbered on
collision) and counted, and :meth:`ResultCache.gc` evicts least-recently
used entries down to a byte budget — except **pinned** entries (``*.pin``
sidecars, e.g. golden-parity baselines), which are never evicted.
"""

from __future__ import annotations

import json
import logging
import os
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import CheckpointError
from ..ioutil import atomic_write_json, io_backend
from ..obs import get_logger, log_event
from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from ..sim.serialization import (
    RESULT_FORMAT_VERSION,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)

#: Schema version of the cache entry envelope.
CACHE_FORMAT_VERSION = 1

#: Fingerprint prefix length used in entry file names.  The full digest is
#: stored (and verified) inside the entry, so the prefix only needs to be
#: collision-resistant *per directory*; 24 hex chars = 96 bits.
FP_PREFIX = 24

#: Workload-fingerprint prefix length in entry file names (64 bits — the
#: full digest is verified from the payload on read).
WLFP_PREFIX = 16

_UNSAFE = re.compile(r"[^A-Za-z0-9._+-]+")
_HEX = re.compile(r"[0-9a-f]+\Z")

logger = get_logger("cache")


def _safe(name: str) -> str:
    return _UNSAFE.sub("_", name) or "unnamed"


def config_fingerprint(config: SimConfig) -> str:
    """Re-export of the runner's memoized fingerprint (one keying scheme)."""
    from ..runner.store import config_fingerprint as _fp

    return _fp(config)


def workload_fingerprint(workload: str) -> str:
    """Re-export of the registry's workload fingerprint (one keying scheme)."""
    from ..plugins.workloads import workload_fingerprint as _wfp

    return _wfp(workload)


@dataclass
class CacheStats:
    """Monotonic counters for one :class:`ResultCache` instance."""

    exact_hits: int = 0
    near_hits: int = 0
    misses: int = 0
    puts: int = 0               #: entries actually written (re-puts skipped)
    evictions: int = 0
    corrupt_quarantined: int = 0


@dataclass(frozen=True)
class CacheHit:
    """One cache answer: the result plus how it was derived.

    ``provenance`` is ``{"cache_hit": True, "key": [...]}`` for exact hits;
    near hits carry ``{"near_hit": True, "source_key": [...],
    "requested_n_instrs": N, "mode": "lower_n" | "neighbor_param", ...}``.
    """

    result: RunResult
    provenance: dict = field(default_factory=dict)

    @property
    def near(self) -> bool:
        return bool(self.provenance.get("near_hit"))


@dataclass
class _Entry:
    """Metadata of one on-disk entry (the ``ls``/``gc`` row)."""

    path: Path
    fingerprint_prefix: str
    workload: str
    n_instrs: int
    bytes: int
    mtime: float
    pinned: bool


def _flatten(value, prefix: tuple = (), out: dict | None = None) -> dict:
    """Flatten a canonical config dict into ``{leaf-path: scalar}``."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(sub, prefix + (str(key),), out)
    elif isinstance(value, (list, tuple)):
        for i, sub in enumerate(value):
            _flatten(sub, prefix + (str(i),), out)
    else:
        out[prefix] = value
    return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def neighbor_param(config_a: dict, config_b: dict) -> tuple[str, object, object] | None:
    """The single swept parameter separating two canonical config dicts.

    Returns ``(dotted_path, value_a, value_b)`` when the configs differ in
    exactly one leaf, that leaf is numeric in both, and it is not ``name``
    — i.e. ``b`` is a neighboring point of a one-parameter sweep around
    ``a``.  Anything else (zero diffs, multiple diffs, a structural or
    non-numeric difference, a rename) returns ``None``: renamed machines
    and reshaped hierarchies are never "near" each other.
    """
    flat_a = _flatten(config_a)
    flat_b = _flatten(config_b)
    missing = object()
    diffs = [
        key
        for key in set(flat_a) | set(flat_b)
        if flat_a.get(key, missing) != flat_b.get(key, missing)
    ]
    if len(diffs) != 1:
        return None
    (key,) = diffs
    a, b = flat_a.get(key, missing), flat_b.get(key, missing)
    if key == ("name",) or not (_is_number(a) and _is_number(b)):
        return None
    return ".".join(key), a, b


class ResultCache:
    """Size-bounded, content-addressed result cache over a directory.

    Args:
        cache_dir: the shared entry directory (created if missing).  Unlike
            a checkpoint dir this is meant to be long-lived and shared
            across campaigns/daemons.
        near: default near-hit policy for :meth:`lookup` — ``False`` means
            exact hits only (the safe default; ``--cache-near`` opts in).
        max_bytes: optional byte budget; exceeding it after a put triggers
            an automatic LRU :meth:`gc`.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        near: bool = False,
        max_bytes: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.near = near
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- keying

    def _path(self, fingerprint: str, workload: str, n_instrs: int) -> Path:
        """Entry path: ``<config fp>--<workload fp>--<safe name>--<n>``.

        The workload *fingerprint* is the identity; the sanitised display
        name rides along purely for humans (``ls`` output, debugging), so
        two workloads whose names sanitise identically still get distinct
        stems.
        """
        wfp = workload_fingerprint(workload)[:WLFP_PREFIX]
        stem = f"{fingerprint[:FP_PREFIX]}--{wfp}--{_safe(workload)}--{n_instrs}"
        return self.cache_dir / f"{stem}.json"

    def _legacy_path(self, fingerprint: str, workload: str, n_instrs: int) -> Path:
        """The pre-workload-fingerprint stem (compat read path)."""
        stem = f"{fingerprint[:FP_PREFIX]}--{_safe(workload)}--{n_instrs}"
        return self.cache_dir / f"{stem}.json"

    @staticmethod
    def _parse_stem(stem: str) -> tuple[str, str, int] | None:
        """Inverse of the ``_path`` stem: ``(fp_prefix, workload_display, n)``.

        Handles both formats: the current one carries a fixed-length hex
        workload-fingerprint segment after the config fingerprint; legacy
        stems go straight to the sanitised name.  The config-fingerprint
        prefix has a fixed length and ``n_instrs`` is the trailing integer,
        so a workload whose *sanitized* name contains ``--`` still parses
        unambiguously.
        """
        if len(stem) < FP_PREFIX + 2 or stem[FP_PREFIX:FP_PREFIX + 2] != "--":
            return None
        rest = stem[FP_PREFIX + 2:]
        workload, sep, n_text = rest.rpartition("--")
        if not sep or not n_text.isdigit():
            return None
        if (
            len(workload) > WLFP_PREFIX + 2
            and workload[WLFP_PREFIX:WLFP_PREFIX + 2] == "--"
            and _HEX.match(workload[:WLFP_PREFIX])
        ):
            workload = workload[WLFP_PREFIX + 2:]
        return stem[:FP_PREFIX], workload, int(n_text)

    # ------------------------------------------------------------- access

    def lookup(
        self,
        config: SimConfig,
        workload: str,
        n_instrs: int,
        *,
        near: bool | None = None,
    ) -> CacheHit | None:
        """Answer one request: exact hit, near hit (if allowed), or miss.

        ``near=None`` defers to the instance policy; passing an explicit
        ``False`` lets a consumer that shares a near-enabled cache (the
        daemon's executors) stay exact-only.
        """
        fingerprint = config_fingerprint(config)
        exact = self._load_exact(fingerprint, workload, n_instrs)
        if exact is not None:
            result, path = exact
            self.stats.exact_hits += 1
            self._touch(path)
            return CacheHit(
                result=result,
                provenance={
                    "cache_hit": True,
                    "key": [fingerprint, workload, n_instrs],
                },
            )
        allow_near = self.near if near is None else near
        if allow_near:
            hit = self._near_lookup(config, fingerprint, workload, n_instrs)
            if hit is not None:
                self.stats.near_hits += 1
                return hit
        self.stats.misses += 1
        return None

    def get_by_key(
        self, fingerprint: str, workload: str, n_instrs: int
    ) -> RunResult | None:
        """Fetch a stored result by raw key (no near logic, no counters).

        This is the read-back path for a result that was *already served*
        — e.g. the daemon resolving a near-completed job's ``source_key``
        — so it deliberately does not touch the hit/miss accounting.
        """
        exact = self._load_exact(fingerprint, workload, n_instrs)
        return exact[0] if exact is not None else None

    def _load_exact(
        self, fingerprint: str, workload: str, n_instrs: int
    ) -> tuple[RunResult, Path] | None:
        """Load an exact key, falling back to the legacy name-keyed stem."""
        path = self._path(fingerprint, workload, n_instrs)
        result = self._load(
            path, fingerprint=fingerprint, workload=workload, n_instrs=n_instrs,
        )
        if result is not None:
            return result, path
        legacy = self._legacy_path(fingerprint, workload, n_instrs)
        result = self._load(
            legacy, fingerprint=fingerprint, workload=workload,
            n_instrs=n_instrs,
        )
        if result is not None:
            return result, legacy
        return None

    def put(
        self,
        config: SimConfig,
        workload: str,
        n_instrs: int,
        result: RunResult,
        *,
        pin: bool = False,
    ) -> bool:
        """Record one *measured* result; returns whether a write happened.

        Content-addressed: if the entry already exists the write is skipped
        (first write wins, which keeps exact hits byte-stable forever).
        Never call this with a near-hit estimate — the cache must only ever
        contain real measurements.
        """
        fingerprint = config_fingerprint(config)
        path = self._path(fingerprint, workload, n_instrs)
        if pin:
            self._pin_path(path).touch()
        if path.exists():
            return False
        payload = {
            "cache_version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "workload_fingerprint": workload_fingerprint(workload),
            "config": config_to_dict(config),
            "workload": workload,
            "n_instrs": n_instrs,
            "result": result_to_dict(result),
        }
        atomic_write_json(path, payload)
        self.stats.puts += 1
        if self.max_bytes is not None and self.bytes() > self.max_bytes:
            self.gc()
        return True

    # ----------------------------------------------------------- near hits

    def _near_lookup(
        self, config: SimConfig, fingerprint: str, workload: str, n_instrs: int
    ) -> CacheHit | None:
        """Same point at a lower length, else a one-knob neighbor config."""
        lower = self._best_lower_n(fingerprint, workload, n_instrs)
        if lower is not None:
            source_n, result = lower
            return self._near_hit(result, {
                "near_hit": True,
                "mode": "lower_n",
                "source_key": [fingerprint, workload, source_n],
                "requested_n_instrs": n_instrs,
                "source_n_instrs": source_n,
            })
        neighbor = self._best_neighbor(config, fingerprint, workload, n_instrs)
        if neighbor is not None:
            source_fp, param, source_value, requested_value, result = neighbor
            return self._near_hit(result, {
                "near_hit": True,
                "mode": "neighbor_param",
                "source_key": [source_fp, workload, n_instrs],
                "requested_n_instrs": n_instrs,
                "requested_fingerprint": fingerprint,
                "param": param,
                "source_value": source_value,
                "requested_value": requested_value,
            })
        return None

    @staticmethod
    def _near_hit(result: RunResult, provenance: dict) -> CacheHit:
        """Stamp near provenance into a *copy* of the stored result.

        The estimate's own payload carries the flags, so downstream
        serialization (figures, ``--json``, checkpoints a consumer
        mistakenly writes) can always be told apart from exact data.
        """
        import dataclasses

        telemetry = dict(result.telemetry or {})
        telemetry["cache"] = dict(provenance)
        stamped = dataclasses.replace(result, telemetry=telemetry)
        return CacheHit(result=stamped, provenance=provenance)

    def _best_lower_n(
        self, fingerprint: str, workload: str, n_instrs: int
    ) -> tuple[int, RunResult] | None:
        """The longest stored run of this exact point below ``n_instrs``.

        Only fingerprint-keyed (current-format) entries participate:
        the workload-fingerprint segment in the glob excludes legacy
        name-keyed stems from near matching by construction.
        """
        wfp = workload_fingerprint(workload)[:WLFP_PREFIX]
        pattern = f"{fingerprint[:FP_PREFIX]}--{wfp}--{_safe(workload)}--*.json"
        candidates = []
        for path in self.cache_dir.glob(pattern):
            parsed = self._parse_stem(path.stem)
            if parsed is None:
                continue
            _, _, entry_n = parsed
            if entry_n < n_instrs:
                candidates.append((entry_n, path))
        for entry_n, path in sorted(candidates, reverse=True):
            result = self._load(
                path, fingerprint=fingerprint, workload=workload,
                n_instrs=entry_n,
            )
            if result is not None:
                return entry_n, result
        return None

    def _best_neighbor(
        self, config: SimConfig, fingerprint: str, workload: str, n_instrs: int
    ) -> tuple[str, str, object, object, RunResult] | None:
        """A stored run at the same ``(workload, n)`` one numeric knob away.

        The workload-fingerprint segment is shared across configs (same
        workload → same fingerprint), so it anchors the glob and keeps
        legacy name-keyed entries out of near matching.
        """
        requested = config_to_dict(config)
        wfp = workload_fingerprint(workload)[:WLFP_PREFIX]
        pattern = f"*--{wfp}--{_safe(workload)}--{n_instrs}.json"
        best = None
        for path in sorted(self.cache_dir.glob(pattern)):
            parsed = self._parse_stem(path.stem)
            if parsed is None or parsed[0] == fingerprint[:FP_PREFIX]:
                continue
            entry = self._load_entry(path)
            if entry is None:
                continue
            if entry["workload"] != workload or entry["n_instrs"] != n_instrs:
                continue  # sanitized-name collision: a different real point
            diff = neighbor_param(requested, entry["config"])
            if diff is None:
                continue
            param, requested_value, source_value = diff
            distance = abs(source_value - requested_value)
            if best is None or distance < best[0]:
                best = (distance, entry["fingerprint"], param,
                        source_value, requested_value, entry["result"])
        if best is None:
            return None
        _, source_fp, param, source_value, requested_value, result = best
        return source_fp, param, source_value, requested_value, result

    # ----------------------------------------------------------- entry I/O

    def _load(
        self, path: Path, *, fingerprint: str, workload: str, n_instrs: int
    ) -> RunResult | None:
        """Read + validate one entry; corrupt files are quarantined."""
        entry = self._load_entry(path)
        if entry is None:
            return None
        if (
            entry["fingerprint"] != fingerprint
            or entry["workload"] != workload
            or entry["n_instrs"] != n_instrs
        ):
            # A truncated-prefix or sanitized-name collision: the file is
            # healthy, it just answers a different key.
            return None
        if entry.get("workload_fingerprint") not in (
            None, workload_fingerprint(workload)
        ):
            # Same display name, different content (e.g. a re-registered
            # out-of-tree workload): never alias it to this key.
            return None
        return entry["result"]

    def _load_entry(self, path: Path) -> dict | None:
        """Parse one entry file into plain fields (``None`` if absent/bad)."""
        if not path.exists():
            return None
        try:
            return self._read_entry(path)
        except CheckpointError as exc:
            self.stats.corrupt_quarantined += 1
            moved_to = self._quarantine(path)
            log_event(
                logger, logging.WARNING, "quarantined corrupt cache entry",
                path=str(path), error=str(exc),
                moved_to=str(moved_to) if moved_to else None,
            )
            return None

    @staticmethod
    def _read_entry(path: Path) -> dict:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable cache entry {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"cache entry {path} is not an object")
        if payload.get("cache_version") != CACHE_FORMAT_VERSION:
            raise CheckpointError(
                f"cache entry {path} has version "
                f"{payload.get('cache_version')!r}, expected "
                f"{CACHE_FORMAT_VERSION}"
            )
        for field_name in ("fingerprint", "workload", "n_instrs", "config"):
            if field_name not in payload:
                raise CheckpointError(f"cache entry {path} lacks {field_name!r}")
        result_payload = payload.get("result")
        if (
            not isinstance(result_payload, dict)
            or result_payload.get("format_version") != RESULT_FORMAT_VERSION
        ):
            raise CheckpointError(f"cache entry {path} has a bad result payload")
        try:
            payload["result"] = result_from_dict(result_payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"cache entry {path} failed to deserialize: {exc}"
            ) from exc
        return payload

    def _quarantine(self, path: Path) -> Path | None:
        """Rename a corrupt entry to ``*.corrupt`` (numbered on collision),
        exactly like the checkpoint store's quarantine."""
        target = path.with_suffix(path.suffix + ".corrupt")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_suffix(f"{path.suffix}.corrupt.{serial}")
        try:
            io_backend().replace(path, target)
        except OSError:
            return None
        return target

    @staticmethod
    def _touch(path: Path) -> None:
        """Bump an entry's mtime (the LRU clock); best-effort."""
        try:
            os.utime(path)
        except OSError:
            pass

    # ------------------------------------------------------------ pinning

    @staticmethod
    def _pin_path(path: Path) -> Path:
        return path.with_suffix(path.suffix + ".pin")

    def pin(self, fingerprint: str, workload: str, n_instrs: int) -> bool:
        """Protect one entry from eviction (golden baselines and the like)."""
        path = self._path(fingerprint, workload, n_instrs)
        if not path.exists():
            path = self._legacy_path(fingerprint, workload, n_instrs)
            if not path.exists():
                return False
        self._pin_path(path).touch()
        return True

    def unpin(self, fingerprint: str, workload: str, n_instrs: int) -> bool:
        pin = self._pin_path(self._path(fingerprint, workload, n_instrs))
        if not pin.exists():
            pin = self._pin_path(
                self._legacy_path(fingerprint, workload, n_instrs)
            )
            if not pin.exists():
                return False
        pin.unlink()
        return True

    # ----------------------------------------------------------- inventory

    def entries(self) -> list[_Entry]:
        """Metadata rows for every parseable entry (oldest first)."""
        rows = []
        for path in self.cache_dir.glob("*.json"):
            parsed = self._parse_stem(path.stem)
            if parsed is None:
                continue
            fp_prefix, workload, n_instrs = parsed
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append(_Entry(
                path=path,
                fingerprint_prefix=fp_prefix,
                workload=workload,
                n_instrs=n_instrs,
                bytes=stat.st_size,
                mtime=stat.st_mtime,
                pinned=self._pin_path(path).exists(),
            ))
        rows.sort(key=lambda e: (e.mtime, e.path.name))
        return rows

    def bytes(self) -> int:
        """Total entry bytes on disk."""
        return sum(entry.bytes for entry in self.entries())

    def __len__(self) -> int:
        return len(self.entries())

    # ----------------------------------------------------------- eviction

    def gc(
        self, max_bytes: int | None = None, *, dry_run: bool = False
    ) -> dict:
        """Evict least-recently-used unpinned entries down to a byte budget.

        Pinned entries are *never* evicted, even if the pins alone exceed
        the budget.  Returns a report dict (the ``gc`` CLI's JSON).
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            raise ValueError("gc needs a byte budget (max_bytes)")
        rows = self.entries()
        total = sum(row.bytes for row in rows)
        evicted: list[str] = []
        freed = 0
        for row in rows:  # oldest first: LRU order
            if total - freed <= budget:
                break
            if row.pinned:
                continue
            if not dry_run:
                try:
                    row.path.unlink()
                except OSError:
                    continue
                self.stats.evictions += 1
            evicted.append(row.path.name)
            freed += row.bytes
        return {
            "budget_bytes": budget,
            "bytes_before": total,
            "bytes_after": total - freed,
            "evicted": len(evicted),
            "freed_bytes": freed,
            "pinned_kept": sum(1 for row in rows if row.pinned),
            "dry_run": dry_run,
            "evicted_entries": evicted,
        }

    # ------------------------------------------------------------ telemetry

    def stats_dict(self) -> dict:
        """Counters plus a live size snapshot (the metrics provider)."""
        rows = self.entries()
        return dict(
            asdict(self.stats),
            entries=len(rows),
            bytes=sum(row.bytes for row in rows),
            pinned=sum(1 for row in rows if row.pinned),
            near_enabled=self.near,
            max_bytes=self.max_bytes,
        )
