"""``python -m repro.cache`` — administer a result cache directory.

Usage::

    python -m repro.cache ls    DIR [--json]
    python -m repro.cache stats DIR [--json]
    python -m repro.cache gc    DIR --max-mb M [--dry-run] [--json]
    python -m repro.cache pin   DIR FINGERPRINT WORKLOAD N_INSTRS
    python -m repro.cache unpin DIR FINGERPRINT WORKLOAD N_INSTRS

``ls`` prints one row per entry (key, config name, size, age, pin state);
``stats`` prints the hit/size counters the daemon also exposes under
``/metrics``; ``gc`` evicts least-recently-used entries down to the byte
budget, never touching pinned entries (pin golden-parity baselines so a
budget squeeze cannot evict them).  ``pin``/``unpin`` take the *full*
fingerprint as printed by ``ls --json`` (a unique prefix of at least the
filename length works for locating the file, but the stored digest is
verified, so pass the full one).

Exit codes: 0 success; 1 entry not found (``pin``/``unpin``); 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .result_cache import ResultCache

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cache",
        description="Administer a content-addressed result cache directory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def cmd(name: str, help_: str) -> argparse.ArgumentParser:
        c = sub.add_parser(name, help=help_)
        c.add_argument("cache_dir", help="the cache directory")
        return c

    ls = cmd("ls", "list entries (oldest first)")
    ls.add_argument("--json", action="store_true", dest="as_json")

    stats = cmd("stats", "size and counter summary")
    stats.add_argument("--json", action="store_true", dest="as_json")

    gc = cmd("gc", "evict LRU unpinned entries down to a byte budget")
    gc.add_argument("--max-mb", type=float, required=True, metavar="M")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be evicted without deleting")
    gc.add_argument("--json", action="store_true", dest="as_json")

    for name, help_ in (
        ("pin", "protect one entry from gc eviction"),
        ("unpin", "remove an entry's eviction protection"),
    ):
        c = cmd(name, help_)
        c.add_argument("fingerprint", help="full config fingerprint (hex)")
        c.add_argument("workload")
        c.add_argument("n_instrs", type=int)
    return parser


def _ls(cache: ResultCache, as_json: bool) -> int:
    rows = cache.entries()
    if as_json:
        now = time.time()
        print(json.dumps([
            {
                "entry": row.path.name,
                "fingerprint_prefix": row.fingerprint_prefix,
                "workload": row.workload,
                "n_instrs": row.n_instrs,
                "bytes": row.bytes,
                "age_s": round(max(0.0, now - row.mtime), 1),
                "pinned": row.pinned,
            }
            for row in rows
        ], indent=2))
        return EXIT_OK
    if not rows:
        print("(empty cache)")
        return EXIT_OK
    now = time.time()
    for row in rows:
        age = max(0.0, now - row.mtime)
        flag = " [pinned]" if row.pinned else ""
        print(
            f"{row.fingerprint_prefix}  {row.workload:<24} "
            f"n={row.n_instrs:<10} {row.bytes:>8} B  "
            f"age {age:7.0f}s{flag}"
        )
    total = sum(row.bytes for row in rows)
    print(f"{len(rows)} entrie(s), {total} bytes")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.command == "ls":
        return _ls(cache, args.as_json)
    if args.command == "stats":
        payload = cache.stats_dict()
        if args.as_json:
            print(json.dumps(payload, indent=2))
        else:
            for key, value in payload.items():
                print(f"{key}: {value}")
        return EXIT_OK
    if args.command == "gc":
        report = cache.gc(
            int(args.max_mb * 1024 * 1024), dry_run=args.dry_run
        )
        if args.as_json:
            print(json.dumps(report, indent=2))
        else:
            verb = "would evict" if args.dry_run else "evicted"
            print(
                f"{verb} {report['evicted']} entrie(s), "
                f"{report['freed_bytes']} bytes "
                f"({report['bytes_before']} -> {report['bytes_after']} B, "
                f"budget {report['budget_bytes']} B, "
                f"{report['pinned_kept']} pinned kept)"
            )
        return EXIT_OK
    if args.command in ("pin", "unpin"):
        action = cache.pin if args.command == "pin" else cache.unpin
        if action(args.fingerprint, args.workload, args.n_instrs):
            print(f"{args.command}ned {args.fingerprint[:24]}/"
                  f"{args.workload}/{args.n_instrs}")
            return EXIT_OK
        print(
            f"no cache entry for {args.fingerprint[:24]}/"
            f"{args.workload}/{args.n_instrs}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    return EXIT_USAGE  # pragma: no cover - argparse guards this


if __name__ == "__main__":
    sys.exit(main())
