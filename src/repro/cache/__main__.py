"""Entry point for ``python -m repro.cache``."""

import sys

from .cli import main

sys.exit(main())
