"""The paper's contribution: criticality detection, TACT, CATCH, oracles."""

from .catch_engine import CatchConfig, CatchEngine
from .criticality import CriticalityDetector, detector_area
from .critical_table import CriticalLoadTable, hash_pc, table_area_bytes
from .ddg import BufferedDDG, CriticalLoad, graph_area_bytes, quantize_latency
from .heuristics import HEURISTICS, make_heuristic
from .oracle import OraclePrefetchEngine, make_latency_policy, profile_critical_pcs
from .tact.coordinator import TACTConfig, TACTCoordinator, TACTStats

__all__ = [
    "CatchConfig",
    "CatchEngine",
    "CriticalityDetector",
    "detector_area",
    "CriticalLoadTable",
    "hash_pc",
    "table_area_bytes",
    "BufferedDDG",
    "HEURISTICS",
    "make_heuristic",
    "CriticalLoad",
    "graph_area_bytes",
    "quantize_latency",
    "OraclePrefetchEngine",
    "make_latency_policy",
    "profile_critical_pcs",
    "TACTConfig",
    "TACTCoordinator",
    "TACTStats",
]
