"""Heuristic criticality predictors (the related-work comparators).

Section VII: "Several other works have described heuristics that can be used
to determine critical instructions [2], [3], [6], [13] ... CATCH uses an
accurate and novel light weight detection of criticality via the data
dependency graph but doesn't preclude the use of other finely tuned
heuristics."  Section IV-A adds the concrete criticism: heuristics "often
flag many more PCs than are truly critical — for instance, branch
mis-predictions that lie in the shadow of a load miss to memory may still be
flagged as critical."

This module implements four cheap heuristic families so that claim can be
tested (see ``experiments/detector_comparison.py`` and the ablation
benchmarks).  Each exposes the same interface as
:class:`~repro.core.criticality.CriticalityDetector` (``on_retire`` +
``is_critical``) and is registered in the ``repro.plugins`` ``DETECTORS``
registry, so any of them can drive TACT via ``CatchConfig.detector`` or
the ``--detector`` CLI flag.

* :class:`OldestInROBHeuristic` — flag loads that stall retirement (the
  QOLD/"oldest instruction blocks commit" family, Tune et al. [2]).
* :class:`ConsumerCountHeuristic` — flag loads with high dynamic fan-out
  (freeness/consumer-count heuristics, Fields et al. token-passing flavour).
* :class:`BranchFeederHeuristic` — flag loads that (transitively) feed
  mispredicted branches (Subramaniam et al. [6] style load-criticality cues).
* :class:`LoadMissPCHeuristic` — flag every load PC that misses the L1, the
  cheapest possible cue and the natural lower bound for the comparison.

All four reuse the 32-entry critical-load table so the comparison isolates
the *identification* mechanism, not the table.
"""

from __future__ import annotations

from collections import Counter

from ..caches.hierarchy import Level
from ..cpu.engine import RetireRecord
from ..workloads.trace import NUM_ARCH_REGS, Op
from .critical_table import CriticalLoadTable

#: Serving levels a heuristic may flag (match the DDG detector's filter).
RECORD_LEVELS = (Level.L2, Level.LLC)


class _HeuristicBase:
    """Shared table plumbing for the heuristic detectors."""

    def __init__(self, table_entries: int = 32, epoch_instructions: int = 100_000):
        self.table = CriticalLoadTable(
            entries=table_entries,
            ways=min(8, table_entries),
            epoch_instructions=epoch_instructions,
        )
        self.critical_pc_counts: Counter[int] = Counter()
        self.flagged = 0

    def _flag(self, record: RetireRecord) -> None:
        self.flagged += 1
        self.critical_pc_counts[record.instr.pc] += 1
        if record.level in RECORD_LEVELS:
            self.table.observe_critical(record.instr.pc)

    def is_critical(self, pc: int) -> bool:
        return self.table.is_critical(pc)

    def is_tracked(self, pc: int) -> bool:
        return self.table.is_tracked(pc)

    def top_critical_pcs(self, n: int) -> list[int]:
        return [pc for pc, _ in self.critical_pc_counts.most_common(n)]

    def on_retire(self, record: RetireRecord) -> None:  # pragma: no cover
        raise NotImplementedError


class OldestInROBHeuristic(_HeuristicBase):
    """Flag loads whose completion gates in-order retirement.

    A load is flagged when its writeback time exceeds the previous
    instruction's commit time by more than ``slack`` cycles — i.e. it was the
    oldest unfinished instruction and commit had to wait for it.  This is the
    classic "QOLD" stall-based criticality cue.
    """

    def __init__(self, slack: float = 4.0, **kw):
        super().__init__(**kw)
        self.slack = slack
        self._prev_commit = 0.0

    def on_retire(self, record: RetireRecord) -> None:
        finish = record.e_time + record.exec_lat
        if record.instr.op is Op.LOAD and finish > self._prev_commit + self.slack:
            self._flag(record)
        self._prev_commit = max(self._prev_commit, finish)
        self.table.tick_retire()


class ConsumerCountHeuristic(_HeuristicBase):
    """Flag loads whose value is consumed by many later instructions.

    Tracks, per in-flight load, how many retired instructions named it as a
    producer within a sliding window; loads with fan-out >= ``threshold``
    are flagged.  At the default threshold of 1 this flags *every consumed
    load* — the liberal archetype: fan-out is a poor proxy for the longest
    path, and over-flagging is exactly the inaccuracy the paper points out
    for heuristic detectors.
    """

    WINDOW = 256

    def __init__(self, threshold: int = 1, **kw):
        super().__init__(**kw)
        self.threshold = threshold
        self._inflight: dict[int, tuple[RetireRecord, int]] = {}

    def on_retire(self, record: RetireRecord) -> None:
        for producer in record.producers:
            entry = self._inflight.get(producer)
            if entry is not None:
                rec, count = entry
                count += 1
                if count == self.threshold:
                    self._flag(rec)
                self._inflight[producer] = (rec, count)
        if record.instr.op is Op.LOAD:
            self._inflight[record.idx] = (record, 0)
            if len(self._inflight) > self.WINDOW:
                self._inflight.pop(next(iter(self._inflight)))
        self.table.tick_retire()


class BranchFeederHeuristic(_HeuristicBase):
    """Flag loads that transitively feed a mispredicted branch.

    Propagates the youngest in-flight load through architectural registers
    (same mechanism TACT-Feeder uses); when a mispredicted branch retires,
    the load feeding its sources is flagged.  This catches branch-resolution
    criticality but also flags loads whose mispredicts hide in the shadow of
    a memory miss — the paper's canonical false positive.
    """

    def __init__(self, **kw):
        super().__init__(**kw)
        self._youngest: list[tuple[int, int] | None] = [None] * NUM_ARCH_REGS
        self._records: dict[int, RetireRecord] = {}
        self._cap = 512

    def on_retire(self, record: RetireRecord) -> None:
        instr = record.instr
        if instr.op is Op.BRANCH and record.mispredicted:
            best = None
            for src in instr.srcs:
                cand = self._youngest[src]
                if cand is not None and (best is None or cand[1] > best[1]):
                    best = cand
            if best is not None:
                feeder = self._records.get(best[1])
                if feeder is not None:
                    self._flag(feeder)
        if instr.dst >= 0:
            if instr.op is Op.LOAD:
                self._youngest[instr.dst] = (instr.pc, record.idx)
                self._records[record.idx] = record
                if len(self._records) > self._cap:
                    self._records.pop(next(iter(self._records)))
            else:
                best = None
                for src in instr.srcs:
                    cand = self._youngest[src]
                    if cand is not None and (best is None or cand[1] > best[1]):
                        best = cand
                self._youngest[instr.dst] = best
        self.table.tick_retire()


class LoadMissPCHeuristic(_HeuristicBase):
    """Flag every load PC that misses the L1 — the cheapest possible cue.

    No dependency tracking at all: a load served from the L2 or beyond is
    "critical".  This is the degenerate baseline the registry exposes as
    ``load-miss-pc``; it maximally over-flags (every miss PC competes for
    the 32-entry table) and isolates how much the DDG's *selectivity* is
    worth relative to raw miss information the cache already has.
    """

    def on_retire(self, record: RetireRecord) -> None:
        if (
            record.instr.op is Op.LOAD
            and record.level is not None
            and record.level is not Level.L1
        ):
            self._flag(record)
        self.table.tick_retire()


HEURISTICS = {
    "oldest_in_rob": OldestInROBHeuristic,
    "consumer_count": ConsumerCountHeuristic,
    "branch_feeder": BranchFeederHeuristic,
    "load_miss_pc": LoadMissPCHeuristic,
}


def make_heuristic(name: str, **kw) -> _HeuristicBase:
    """Instantiate a heuristic detector by name.

    Unknown names raise :class:`~repro.errors.ConfigError` (a ``ValueError``
    subclass) with the same choose-from/did-you-mean shape as every plugin
    registry.
    """
    from ..errors import ConfigError
    from ..plugins.registry import canonical_name, suggest

    key = canonical_name(name).replace("-", "_")
    try:
        cls = HEURISTICS[key]
    except KeyError:
        raise ConfigError(
            f"unknown heuristic {name!r}; "
            f"{suggest(name, [k.replace('_', '-') for k in HEURISTICS])}"
        ) from None
    return cls(**kw)
