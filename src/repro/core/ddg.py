"""Hardware-buffered data dependency graph (Fields et al.) — Section IV-A.

The criticality detector buffers the DDG of the last ``2.5 x ROB`` retired
instructions.  Each instruction contributes three nodes:

* **D** — allocation into the OOO,
* **E** — dispatch to the execution units,
* **C** — writeback/commit,

with edges D-D (in-order allocation), C-D (ROB depth), D-E (rename), E-E
(data and memory dependences, weighted by the producer's execution latency),
E-C (execution latency), C-C (in-order commit) and E-D (bad speculation).

The longest D(first)->C(last) path is found *incrementally*: when an
instruction retires, each of its nodes takes the incoming edge that maximises
its distance from the start of the buffered graph, storing that distance
(``node cost``) and the chosen edge (``prev``).  Once ``2 x ROB``
instructions are buffered, enumerating the critical path is a simple
backwards walk over ``prev`` pointers — no depth-first search.

As in the hardware proposal, execution latencies are quantised (divided by 8,
5-bit saturating) before being stored as edge weights.  The *hardware* buffer
is provisioned at ``2.5 x ROB`` so retirement can continue while a walk is in
progress; this model walks instantaneously at the ``2 x ROB`` window, so the
buffer never holds more than ``walk_window`` entries and the extra headroom
exists only in the area accounting (:attr:`BufferedDDG.capacity`,
:func:`graph_area_bytes`), never as a model-visible overflow path.

The node buffer is preallocated at ``walk_window`` entries and reused across
windows — the detector runs once per retired instruction, and per-node
allocation dominated its profile.

Area accounting for Table I is provided by :func:`graph_area_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..cpu.engine import RetireRecord

#: Execution latencies are stored quantised: ``min(31, lat >> 3)`` (5-bit
#: saturating counter of 8-cycle units), per Section IV-A.
QUANT_SHIFT = 3
QUANT_MAX = 31


def quantize_latency(latency: float) -> int:
    """Quantise a latency the way the hardware stores it (5b, /8)."""
    return min(QUANT_MAX, int(latency) >> QUANT_SHIFT)


def dequantize(q: int) -> int:
    return q << QUANT_SHIFT


class NodeKind(IntEnum):
    D = 0
    E = 1
    C = 2


@dataclass(slots=True)
class CriticalLoad:
    """A load E-node found on the critical path during a walk."""

    pc: int
    level: int      #: ``caches.Level`` value at which the load was served
    idx: int        #: dynamic instruction index


@dataclass(slots=True)
class _Node:
    """Buffered graph entry for one instruction (all three nodes)."""

    idx: int
    pc: int
    is_load: bool
    level: int            #: serving level for loads (-1 otherwise)
    lat_q: int            #: quantised execution latency
    d_cost: int = 0
    e_cost: int = 0
    c_cost: int = 0
    # prev pointers: local buffer position of the predecessor instruction and
    # which of its nodes the max-cost edge came from (NodeKind); -1 = source.
    d_prev: int = -1
    d_prev_kind: int = -1
    e_prev: int = -1
    e_prev_kind: int = -1
    c_prev: int = -1
    c_prev_kind: int = -1


@dataclass(slots=True)
class DDGStats:
    retired: int = 0
    walks: int = 0
    critical_loads_seen: int = 0
    critical_path_nodes: int = 0


class BufferedDDG:
    """Incremental critical-path finder over a sliding retire window.

    Args:
        rob_size: machine ROB depth (walk window = 2x; the hardware buffer
            is provisioned at 2.5x, see :attr:`capacity`).
        rename_latency: D-E edge weight.
        on_walk: callback invoked with the list of :class:`CriticalLoad`
            found by each completed walk.
    """

    def __init__(
        self,
        rob_size: int = 224,
        rename_latency: int = 1,
        on_walk=None,
    ) -> None:
        self.rob_size = rob_size
        self.walk_window = 2 * rob_size
        #: Hardware buffer provisioning (2.5 x ROB, Table I): the headroom
        #: over :attr:`walk_window` absorbs retirement while a hardware walk
        #: is in progress.  The model's walk is instantaneous, so occupancy
        #: never exceeds ``walk_window``; this figure feeds area accounting
        #: only (:func:`graph_area_bytes`).
        self.capacity = int(2.5 * rob_size)
        self.rename_latency = rename_latency
        self.on_walk = on_walk
        self.stats = DDGStats()
        # Preallocated node pool, reused window after window; only the first
        # _count entries are live.
        self._buffer: list[_Node] = [
            _Node(0, 0, False, -1, 0) for _ in range(self.walk_window)
        ]
        self._count = 0
        #: dynamic idx of the first instruction in the buffer
        self._base_idx = 0
        self._pending_espec_cost = -1  #: E-D edge: cost at which fetch resumes

    # ------------------------------------------------------------------ add

    def add(self, record: RetireRecord) -> list[CriticalLoad] | None:
        """Buffer one retired instruction; returns walk results when a walk
        completes, else ``None``."""
        stats = self.stats
        stats.retired += 1
        buf = self._buffer
        pos = self._count
        instr = record.instr
        level = record.level
        node = buf[pos]
        node.idx = record.idx
        node.pc = instr.pc
        if level is not None:
            node.is_load = True
            node.level = int(level)
        else:
            node.is_load = False
            node.level = -1
        lat_q = int(record.exec_lat) >> QUANT_SHIFT  # quantize_latency inline
        if lat_q > QUANT_MAX:
            lat_q = QUANT_MAX
        node.lat_q = lat_q

        # ---- D node: D-D, C-D, E-D incoming edges ------------------------
        if pos > 0:
            d_cost = buf[pos - 1].d_cost       # D-D, weight 0
            d_prev = pos - 1
            d_prev_kind = 0                    # NodeKind.D
        else:
            d_cost = 0
            d_prev = -1
            d_prev_kind = -1
        rob_pos = pos - self.rob_size
        if rob_pos >= 0:
            c_cost = buf[rob_pos].c_cost
            if c_cost > d_cost:
                d_cost = c_cost               # C-D, weight 0
                d_prev = rob_pos
                d_prev_kind = 2                # NodeKind.C
        pending = self._pending_espec_cost
        if pending > d_cost and pos > 0:
            d_cost = pending                   # E-D (bad speculation)
            d_prev = pos - 1
            d_prev_kind = 1                    # NodeKind.E
        self._pending_espec_cost = -1
        node.d_cost = d_cost
        node.d_prev = d_prev
        node.d_prev_kind = d_prev_kind

        # ---- E node: D-E and E-E incoming edges ---------------------------
        e_cost = d_cost + self.rename_latency
        e_prev = pos
        e_prev_kind = 0                        # NodeKind.D
        base_idx = self._base_idx
        for producer_idx in record.producers:
            ppos = producer_idx - base_idx
            if ppos < 0 or ppos >= pos:
                continue  # producer retired before this buffer window
            p = buf[ppos]
            cost = p.e_cost + (p.lat_q << QUANT_SHIFT)
            if cost > e_cost:
                e_cost = cost
                e_prev = ppos
                e_prev_kind = 1                # NodeKind.E
        node.e_cost = e_cost
        node.e_prev = e_prev
        node.e_prev_kind = e_prev_kind

        # ---- C node: E-C and C-C incoming edges ---------------------------
        exec_cycles = lat_q << QUANT_SHIFT
        c_cost = e_cost + exec_cycles
        c_prev = pos
        c_prev_kind = 1                        # NodeKind.E
        if pos > 0:
            prev_c = buf[pos - 1].c_cost
            if prev_c > c_cost:
                c_cost = prev_c                # C-C, weight 0
                c_prev = pos - 1
                c_prev_kind = 2                # NodeKind.C
        node.c_cost = c_cost
        node.c_prev = c_prev
        node.c_prev_kind = c_prev_kind

        if record.mispredicted:
            self._pending_espec_cost = e_cost + exec_cycles

        pos += 1
        self._count = pos

        if pos >= self.walk_window:
            result = self.walk()
            self._flush()
            return result
        return None

    # ----------------------------------------------------------------- walk

    def walk(self) -> list[CriticalLoad]:
        """Walk the critical path backwards from C of the last instruction.

        Returns the load E-nodes found on the path (most recent first).
        """
        count = self._count
        if not count:
            return []
        buf = self._buffer
        self.stats.walks += 1
        found: list[CriticalLoad] = []
        pos = count - 1
        kind = 2  # NodeKind.C
        steps = 0
        limit = 3 * count
        while pos >= 0 and steps < limit:
            steps += 1
            node = buf[pos]
            if kind == 2:
                nxt, nxt_kind = node.c_prev, node.c_prev_kind
            elif kind == 1:
                if node.is_load:
                    found.append(
                        CriticalLoad(pc=node.pc, level=node.level, idx=node.idx)
                    )
                nxt, nxt_kind = node.e_prev, node.e_prev_kind
            else:
                nxt, nxt_kind = node.d_prev, node.d_prev_kind
            if nxt < 0:
                break
            pos, kind = nxt, nxt_kind
        self.stats.critical_path_nodes += steps
        self.stats.critical_loads_seen += len(found)
        if self.on_walk is not None:
            self.on_walk(found)
        return found

    def _flush(self) -> None:
        """Discard the buffered window ("reset the read pointer")."""
        self._base_idx += self._count
        self._count = 0
        self._pending_espec_cost = -1

    @property
    def buffered(self) -> int:
        return self._count


def graph_area_bytes(rob_size: int = 224) -> dict[str, float]:
    """Table I area accounting for the buffered graph.

    Per buffered instruction: 5 b quantised E-C latency, 3 x 9 b register
    E-E sources + 9 b memory dependence, 1 b E-D flag, plus a 10 b hashed PC.
    The buffer holds ``2.5 x ROB`` instructions.
    """
    entries = int(2.5 * rob_size)
    ee_bits = 9 * 3 + 9
    per_instr_bits = 5 + ee_bits + 1
    graph_bytes = entries * per_instr_bits / 8
    pc_bytes = entries * 10 / 8
    return {
        "entries": entries,
        "per_instr_bits": per_instr_bits,
        "graph_bytes": graph_bytes,
        "pc_bytes": pc_bytes,
        "total_bytes": graph_bytes + pc_bytes,
    }
