"""CATCH: Criticality Aware Tiered Cache Hierarchy — the composed engine.

Wires the hardware criticality detector (Section IV-A) and the TACT
prefetcher family (Section IV-B) into an :class:`~repro.cpu.OOOCore` via the
engine hooks.  This object *is* the paper's proposal: attach it to a core
over any hierarchy (three-level, or two-level "noL2") and critical loads that
would have been served by the L2/LLC are prefetched into the L1 just in time,
while code misses are hidden by the CNPIP runahead.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .. import obs
from ..caches.hierarchy import AccessResult
from ..cpu.engine import Engine, RetireRecord
from ..workloads.trace import Instr
from .criticality import CriticalityDetector
from .tact.coordinator import TACTConfig, TACTCoordinator


@dataclass(frozen=True)
class CatchConfig:
    """Knobs for the full CATCH engine."""

    tact: TACTConfig = field(default_factory=TACTConfig)
    table_entries: int = 32
    epoch_instructions: int = 100_000
    #: Detector-only mode: learn criticality but never prefetch (used by the
    #: oracle studies to enumerate critical PCs without perturbing timing).
    detector_only: bool = False
    #: Criticality identification mechanism, resolved through
    #: :data:`repro.plugins.detectors.DETECTORS`: ``"ddg"`` (the paper's
    #: buffered dependency graph), one of the heuristic comparators
    #: (``oldest-in-rob``/``consumer-count``/``branch-feeder``/
    #: ``load-miss-pc``), or ``"oracle"`` (a fixed set from
    #: :attr:`oracle_pcs`).  ``"none"`` is rejected here — it means
    #: ``catch=None`` and is resolved at composition time.
    detector: str = "ddg"
    #: Critical-PC set driving the ``"oracle"`` detector (ignored by the
    #: online detectors); typically produced by
    #: :func:`repro.core.oracle.profile_critical_pcs`.
    oracle_pcs: tuple[int, ...] = ()
    #: Critical-table victim policy: ``"lru"`` (paper) or ``"lfu"`` (the
    #: frequency-aware future-work variant for povray-class applications).
    table_policy: str = "lru"


class CatchEngine(Engine):
    """Criticality detection + TACT prefetching for one core."""

    def __init__(self, config: CatchConfig | None = None) -> None:
        self.config = config or CatchConfig()
        self.detector: CriticalityDetector | None = None
        self.tact: TACTCoordinator | None = None
        self._core = None

    # -------------------------------------------------------------- wiring

    def attach(self, core_id: int, core) -> None:
        if self._core is core:
            return  # re-attach on a warmup/measure boundary keeps state
        self._core = core
        cfg = self.config
        # Resolved lazily: the registry's entry modules import the full
        # core/cpu layers and must not load while this module initialises.
        from ..errors import ConfigError
        from ..plugins.detectors import DETECTORS

        spec = DETECTORS.get(cfg.detector)
        if spec.factory is None:
            raise ConfigError(
                f"detector {cfg.detector!r} cannot drive a CATCH engine; "
                f"'none' means no criticality engine at all — use catch=None "
                f"(the --detector none CLI path composes that for you)"
            )
        self.detector = spec.factory(core, cfg)
        if not cfg.detector_only:
            self.tact = TACTCoordinator(
                core_id,
                core.hierarchy,
                self.detector,
                core.predictor,
                cfg.tact,
            )
            core.frontend.on_code_miss = self.tact.on_code_miss
            # Flatten the per-instruction hook chains: bind the TACT entry
            # points directly as instance attributes, shadowing the class
            # methods, so the core dispatches straight into the coordinator
            # instead of through a forwarding frame on every instruction.
            self.after_load = self.tact.on_load_execute
            self.on_execute = self.tact.on_execute
        if isinstance(self.detector, CriticalityDetector):
            # Same flattening for retire: graph.add + tick_retire without
            # the CatchEngine.on_retire -> detector.on_retire frames.
            graph_add = self.detector.graph.add
            tick_retire = self.detector.table.tick_retire

            def _retire(record, _add=graph_add, _tick=tick_retire):
                _add(record)
                _tick()

            self.on_retire = _retire
        obs.metrics().register_provider(
            f"catch.core{core_id}", self._telemetry_snapshot
        )

    def _telemetry_snapshot(self) -> dict:
        """Detector and TACT counters for the metrics registry."""
        out: dict = {
            "detector": self.config.detector,
            "critical_pcs": self.critical_pcs,
        }
        if self.detector is not None:
            out["flagged_pcs"] = len(self.detector.critical_pc_counts)
        if self.tact is not None:
            stats = dataclasses.asdict(self.tact.stats)
            stats["served_from"] = {
                lvl.name: n for lvl, n in self.tact.stats.served_from.items()
            }
            out["tact"] = stats
        return out

    def set_trace(self, trace) -> None:
        if self.tact is not None:
            self.tact.set_trace(trace)

    # --------------------------------------------------------------- hooks

    def after_load(
        self, instr: Instr, idx: int, now: float, result: AccessResult
    ) -> None:
        if self.tact is not None:
            self.tact.on_load_execute(instr, idx, now, result)

    def on_execute(self, instr: Instr, idx: int, now: float) -> None:
        if self.tact is not None:
            self.tact.on_execute(instr, idx, now)

    def on_retire(self, record: RetireRecord) -> None:
        assert self.detector is not None, "engine not attached"
        self.detector.on_retire(record)

    # ---------------------------------------------------------------- stats

    def reset_stats(self) -> None:
        """Zero TACT counters at a sample boundary (learned state is kept)."""
        if self.tact is not None:
            from .tact.coordinator import TACTStats

            self.tact.stats = TACTStats()
            self.tact.code.stats = type(self.tact.code.stats)()

    @property
    def critical_pcs(self) -> int:
        return self.detector.table.critical_count() if self.detector else 0
