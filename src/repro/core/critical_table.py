"""Critical load table — Section IV-A "Recording the Critical Instructions".

A 32-entry, 8-way set-associative, LRU-managed table of load PCs observed on
the critical path (hitting the L2 or LLC).  Each entry holds a 2-bit
saturating confidence counter; a PC is reported *critical* only while it is
resident with saturated confidence.  Every 100K retired instructions the
confidence of entries that have not reached saturation is reset, forcing
them to re-learn.

PCs are stored as 10-bit hashes (the hardware never stores full addresses);
aliasing is therefore possible and intentional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PC_HASH_BITS = 10
CONFIDENCE_MAX = 3  # 2-bit saturating counter


def hash_pc(pc: int) -> int:
    """10-bit PC hash used for both indexing and matching."""
    return (pc ^ (pc >> PC_HASH_BITS) ^ (pc >> 2 * PC_HASH_BITS)) & (
        (1 << PC_HASH_BITS) - 1
    )


@dataclass(slots=True)
class _Entry:
    pc_hash: int
    confidence: int = 0
    lru: int = 0
    hits: int = 0      #: times re-observed critical (stats only)


@dataclass
class CriticalTableStats:
    inserts: int = 0
    promotions: int = 0
    evictions: int = 0
    epoch_resets: int = 0


class CriticalLoadTable:
    """The paper's 32-entry critical-load PC table.

    Args:
        entries: total capacity (the paper's sensitivity study, Section
            VI-D2, varies this; 32 is the shipping point).
        ways: set associativity (8 in the paper).
        epoch_instructions: confidence-reset period in retired instructions.
    """

    def __init__(
        self,
        entries: int = 32,
        ways: int = 8,
        epoch_instructions: int = 100_000,
        policy: str = "lru",
    ) -> None:
        """``policy`` selects the victim on a full set: ``"lru"`` (the
        paper's design) or ``"lfu"`` — least-frequently-observed with epoch
        decay, the "better critical load table management" the paper leaves
        as future work for povray-class applications whose many critical PCs
        thrash an LRU table."""
        if entries % ways:
            raise ValueError(f"entries {entries} not divisible by ways {ways}")
        if policy not in ("lru", "lfu"):
            raise ValueError(f"unknown table policy {policy!r}")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self.policy = policy
        self.epoch_instructions = epoch_instructions
        self._sets: list[dict[int, _Entry]] = [{} for _ in range(self.num_sets)]
        self._clock = 0
        self._retired_in_epoch = 0
        self.stats = CriticalTableStats()

    def _set_for(self, pc_hash: int) -> dict[int, _Entry]:
        return self._sets[pc_hash % self.num_sets]

    # ----------------------------------------------------------- training

    def observe_critical(self, pc: int) -> None:
        """Record that ``pc`` was seen on the critical path (L2/LLC hit)."""
        h = hash_pc(pc)
        entries = self._set_for(h)
        self._clock += 1
        entry = entries.get(h)
        if entry is not None:
            if entry.confidence < CONFIDENCE_MAX:
                entry.confidence += 1
                if entry.confidence == CONFIDENCE_MAX:
                    self.stats.promotions += 1
            entry.hits += 1
            entry.lru = self._clock
            return
        if len(entries) >= self.ways:
            if self.policy == "lfu":
                # Frequency-aware management (the paper's future-work idea).
                # Two rules break the povray thrash: (a) a newcomer may not
                # displace an entry already re-observed critical, and (b)
                # under pressure only 1-in-4 newcomers insert at all, so some
                # entries live long enough to be re-observed and established.
                # A plain frequency victim would tie under a rotation of
                # equally-critical PCs and degenerate back to LRU thrash.
                victim = min(entries.values(), key=lambda e: (e.hits, e.lru))
                if victim.hits > 1:
                    return  # bypass: the set is full of proven-critical PCs
                if self._clock & 3:
                    return  # probabilistic insertion (deterministic 1-in-4)
            else:
                victim = min(entries.values(), key=lambda e: e.lru)
            del entries[victim.pc_hash]
            self.stats.evictions += 1
        entries[h] = _Entry(pc_hash=h, confidence=1, lru=self._clock)
        self.stats.inserts += 1

    def tick_retire(self, count: int = 1) -> None:
        """Advance the retire counter; applies the 100K-instruction epoch."""
        self._retired_in_epoch += count
        if self._retired_in_epoch >= self.epoch_instructions:
            self._retired_in_epoch = 0
            self.stats.epoch_resets += 1
            for entries in self._sets:
                for entry in entries.values():
                    if entry.confidence < CONFIDENCE_MAX:
                        entry.confidence = 0
                    if self.policy == "lfu":
                        entry.hits >>= 1  # frequency decay per epoch

    # ------------------------------------------------------------- queries

    def is_critical(self, pc: int) -> bool:
        """True while the PC is resident with saturated confidence."""
        h = hash_pc(pc)
        entry = self._set_for(h).get(h)
        return entry is not None and entry.confidence >= CONFIDENCE_MAX

    def is_tracked(self, pc: int) -> bool:
        """True if the PC is resident at any confidence (TACT trains on
        tracked PCs so learning overlaps confidence buildup)."""
        h = hash_pc(pc)
        return h in self._set_for(h)

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def critical_count(self) -> int:
        return sum(
            1
            for entries in self._sets
            for e in entries.values()
            if e.confidence >= CONFIDENCE_MAX
        )


def table_area_bytes(entries: int = 32, ways: int | None = None) -> float:
    """Storage for the critical table: 10 b hash + 2 b confidence + LRU.

    The LRU field orders a line's age within its set, so it needs
    ``ceil(log2(ways))`` bits per entry — 3 bits at the paper's 8-way,
    32-entry shipping point (Table I: 60 bytes), not a constant 3
    regardless of geometry.  ``ways`` defaults to ``min(8, entries)``,
    matching how :class:`~repro.core.criticality.CriticalityDetector`
    constructs the table for small sensitivity-study capacities.
    """
    if ways is None:
        ways = min(8, entries)
    if ways < 1 or entries % ways:
        raise ValueError(f"entries {entries} not divisible by ways {ways}")
    lru_bits = (ways - 1).bit_length()  # ceil(log2(ways)); 0 for direct-mapped
    return entries * (PC_HASH_BITS + 2 + lru_bits) / 8
