"""Oracle studies — Sections III-B and III-C.

Two oracle mechanisms drive the paper's motivation:

* :class:`OraclePrefetchEngine` (Figure 5): for a chosen set of critical load
  PCs, every L1 miss that would hit the L2/LLC is converted into an L1 hit by
  a zero-time prefetch, and all code fetches hit the L1I.  Baseline hardware
  prefetchers are disabled during oracle runs (training them under an oracle
  is ill-defined, as the paper notes).

* :func:`make_latency_policy` (Figure 4): re-prices hits at one level to the
  next level's latency, either for all loads or only for non-critical ones,
  using a critical-PC set learned by the hardware detector in a profiling
  pass.

Both consume the output of :func:`profile_critical_pcs`, which runs the
criticality detector over a baseline execution and ranks load PCs by how
often they appear on the critical path (the paper's "past predicts future",
applied across runs instead of within one).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..caches.hierarchy import Level
from ..cpu.core import CoreParams, OOOCore
from ..cpu.engine import Engine, RetireRecord
from ..workloads.trace import Instr, Op, Trace
from .catch_engine import CatchConfig, CatchEngine


def profile_critical_pcs(
    trace: Trace,
    hierarchy_factory,
    core_params: CoreParams | None = None,
    top_n: int | None = None,
) -> list[int]:
    """Run a detector-only pass and rank critical load PCs by frequency.

    Args:
        trace: workload to profile.
        hierarchy_factory: zero-argument callable building a fresh hierarchy
            (the profiling run must not share cache state with the study run).
        core_params: core configuration.
        top_n: truncate the ranking (Figure 5 sweeps 32..2048; None = all).
    """
    engine = CatchEngine(CatchConfig(detector_only=True))
    core = OOOCore(0, hierarchy_factory(), core_params, engine)
    core.run(trace)
    assert engine.detector is not None
    ranked = engine.detector.top_critical_pcs(top_n or len(engine.detector.critical_pc_counts))
    return ranked


class _FixedCriticalSet:
    """Critical-table stand-in backed by a fixed PC set (oracle detector)."""

    def __init__(self, pcs: frozenset[int]) -> None:
        self._pcs = pcs

    def critical_count(self) -> int:
        return len(self._pcs)

    def is_critical(self, pc: int) -> bool:
        return pc in self._pcs

    def is_tracked(self, pc: int) -> bool:
        return pc in self._pcs

    def observe_critical(self, pc: int) -> None:
        pass  # the set is fixed; nothing is learned

    def tick_retire(self) -> None:
        pass


class OracleDetector:
    """Criticality "detector" that already knows the answer.

    Wraps a fixed critical-PC set (typically from
    :func:`profile_critical_pcs` on a prior run) behind the same interface
    as :class:`~repro.core.criticality.CriticalityDetector`, so TACT can be
    driven by perfect knowledge: registry name ``oracle``, with the set
    supplied via ``CatchConfig.oracle_pcs``.  Upper-bounds what any online
    identification mechanism could achieve for a given table size.
    """

    def __init__(self, pcs) -> None:
        self.pcs = frozenset(pcs)
        self.table = _FixedCriticalSet(self.pcs)
        self.critical_pc_counts: Counter[int] = Counter()
        self.flagged = 0

    def on_retire(self, record: RetireRecord) -> None:
        instr = record.instr
        if instr.op is Op.LOAD and instr.pc in self.pcs:
            self.flagged += 1
            self.critical_pc_counts[instr.pc] += 1

    def is_critical(self, pc: int) -> bool:
        return pc in self.pcs

    def is_tracked(self, pc: int) -> bool:
        return pc in self.pcs

    def top_critical_pcs(self, n: int) -> list[int]:
        return [pc for pc, _ in self.critical_pc_counts.most_common(n)]


@dataclass
class OracleStats:
    prefetches: int = 0
    converted_loads: int = 0   #: L1 misses turned into hits


class OraclePrefetchEngine(Engine):
    """Zero-time critical prefetcher (Figure 5 oracle).

    Args:
        critical_pcs: PCs whose loads are converted (ignored if ``all_pcs``).
        all_pcs: convert every load L1 miss that would hit on-die.
        perfect_code: make all code fetches L1I hits (paper's oracle does).
    """

    def __init__(
        self,
        critical_pcs: set[int] | None = None,
        all_pcs: bool = False,
        perfect_code: bool = True,
    ) -> None:
        self.critical_pcs = critical_pcs or set()
        self.all_pcs = all_pcs
        self.perfect_code = perfect_code
        self.stats = OracleStats()
        self._core = None

    def attach(self, core_id: int, core) -> None:
        self._core = core
        self.core_id = core_id
        if self.perfect_code:
            core.frontend.perfect_code = True

    def before_load(self, instr: Instr, idx: int, now: float) -> None:
        """Zero-time prefetch: if the line is on-die beyond the L1, fill the
        L1 instantly so the demand access hits."""
        if not self.all_pcs and instr.pc not in self.critical_pcs:
            return
        hierarchy = self._core.hierarchy
        where = hierarchy.where(self.core_id, instr.line)
        if where in (Level.L2, Level.LLC):
            outcome = hierarchy.prefetch_l1(self.core_id, instr.line, now)
            if outcome is not None:
                # Zero-time: force the fill to be complete right now.
                line = hierarchy.l1d[self.core_id].peek(instr.line)
                if line is not None:
                    line.ready = now
                self.stats.prefetches += 1
                self.stats.converted_loads += 1


def make_latency_policy(
    mode: str,
    critical_pcs: set[int],
    level_from: Level,
    latency_to: float,
):
    """Latency-conversion oracle for Figure 4.

    Args:
        mode: ``"all"`` (convert every hit at ``level_from``) or
            ``"noncritical"`` (convert only loads whose PC is not critical).
        critical_pcs: the profiled critical set.
        level_from: hits at this level are re-priced.
        latency_to: the replacement latency (the next level's, or memory's).

    Returns:
        A ``(pc, level, latency) -> latency`` callable for
        ``CacheHierarchy.latency_policy``, with a ``converted``/``total``
        counter dict attached as ``policy.counts``.
    """
    if mode not in ("all", "noncritical"):
        raise ValueError(f"unknown oracle mode {mode!r}")
    counts = {"converted": 0, "total": 0}

    def policy(pc: int, level: Level, latency: float) -> float:
        if level is not level_from:
            return latency
        counts["total"] += 1
        if mode == "all" or pc not in critical_pcs:
            counts["converted"] += 1
            return max(latency, latency_to)
        return latency

    policy.counts = counts
    return policy
