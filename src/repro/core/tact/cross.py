"""TACT-Cross: cross-PC address association prefetching — Section IV-B1.

A critical *target* load often sits at a fixed address delta from an earlier
*trigger* load (same ``RegSrcBase``, different offset — struct fields; or
pointers loaded with fixed deltas).  Over 85% of useful deltas fall within a
4 KB page, so candidate triggers come from the :class:`TriggerCache` (first
four load PCs to touch the target's page).

Learning protocol (as specified in the paper): the target auditions one
candidate trigger at a time for up to 16 instances, looking for a stable
delta ``target.addr - trigger.last_addr``; failing that it moves to the next
candidate, wrapping through the candidate list at most 4 times before giving
up.  Once learned, every execution of the trigger PC prefetches
``trigger.addr + delta`` into the L1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

INSTANCES_PER_CANDIDATE = 16
MAX_WRAPS = 4
DELTA_CONFIDENCE_MAX = 3


@dataclass(slots=True)
class CrossState:
    """Per-target trigger-search and delta-learning state."""

    candidates: list[int] = field(default_factory=list)
    candidate_pos: int = 0
    instances: int = 0
    wraps: int = 0
    gave_up: bool = False
    trigger_pc: int = -1       #: learned trigger (valid when delta_conf saturated)
    delta: int = 0
    delta_conf: int = 0
    last_delta: int = 0

    @property
    def learned(self) -> bool:
        return self.trigger_pc >= 0 and self.delta_conf >= DELTA_CONFIDENCE_MAX

    def current_candidate(self) -> int:
        if not self.candidates or self.gave_up:
            return -1
        return self.candidates[self.candidate_pos % len(self.candidates)]

    def refresh_candidates(self, candidates: list[int], self_pc: int) -> None:
        """Adopt trigger candidates from the Trigger Cache (excluding self)."""
        filtered = [pc for pc in candidates if pc != self_pc]
        if filtered and not self.candidates:
            self.candidates = filtered
            self.candidate_pos = 0
            self.instances = 0

    def observe_target(self, target_addr: int, trigger_last_addr: int) -> None:
        """Train on one target instance given the candidate's last address."""
        if self.learned or self.gave_up or not self.candidates:
            return
        self.instances += 1
        if trigger_last_addr >= 0:
            delta = target_addr - trigger_last_addr
            if delta == self.last_delta and delta != 0:
                self.delta_conf += 1
                if self.delta_conf >= DELTA_CONFIDENCE_MAX:
                    self.trigger_pc = self.current_candidate()
                    self.delta = delta
                    return
            else:
                self.delta_conf = 0
            self.last_delta = delta
        if self.instances >= INSTANCES_PER_CANDIDATE:
            self.instances = 0
            self.delta_conf = 0
            self.candidate_pos += 1
            if self.candidate_pos >= len(self.candidates):
                self.candidate_pos = 0
                self.wraps += 1
                if self.wraps >= MAX_WRAPS:
                    self.gave_up = True

    def prefetch_for_trigger(self, trigger_addr: int) -> int | None:
        """Address to prefetch when the learned trigger executes."""
        if not self.learned:
            return None
        return trigger_addr + self.delta
