"""TACT-Code: front-end runahead code prefetching — Section IV-B2.

When the in-order front end stalls on a code L1 miss, the Code Next Prefetch
IP (CNPIP) checkpoints the architectural NIP and runs ahead through the
predicted instruction stream, prefetching the code lines it encounters into
the L1I.  Runahead follows the branch predictor: it stops at the first branch
the predictor would get wrong (the real CNPIP would wander off the true
path), and it only operates while the front end is stalled — the paper adds
no extra ports for it.

In this trace-driven model the upcoming instruction stream *is* the trace;
fidelity to the hardware comes from (a) consulting the live branch
predictor's ``would_predict`` for every conditional branch encountered and
stopping on disagreement, and (b) bounding the runahead by the stall window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...workloads.trace import Op, Trace


@dataclass
class CodeRunaheadStats:
    activations: int = 0
    lines_prefetched: int = 0
    stopped_by_branch: int = 0
    stopped_by_window: int = 0


class CodePrefetcher:
    """CNPIP runahead bound to one core's front end.

    Args:
        core: core id.
        hierarchy: shared hierarchy (prefetches via ``prefetch_l1(code=True)``).
        predictor: the core's live branch predictor.
        max_lines: cap on distinct lines prefetched per stall (bounds the
            work the CNPIP can do in one stall window).
    """

    def __init__(self, core: int, hierarchy, predictor, max_lines: int = 8) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.max_lines = max_lines
        self.stats = CodeRunaheadStats()
        self._trace: Trace | None = None

    def set_trace(self, trace: Trace) -> None:
        self._trace = trace

    def on_code_miss(self, idx: int, now: float, stall: float) -> None:
        """Front-end stall callback: run ahead and prefetch code lines."""
        if self._trace is None:
            return
        self.stats.activations += 1
        instrs = self._trace.instrs
        n = len(instrs)
        seen: set[int] = set()
        pos = idx % n  # the MP driver replays traces cyclically
        current_line = instrs[pos].code_line
        # The CNPIP queries the live predictor with its own speculative
        # history, exactly as the real front end would during the stall.
        history = self.predictor.history
        steps = 0
        max_steps = self.max_lines * 16  # don't scan unboundedly within a line
        while steps < max_steps and len(seen) < self.max_lines:
            steps += 1
            pos += 1
            if pos >= n:
                break
            instr = instrs[pos]
            line = instr.code_line
            if line != current_line and line not in seen:
                issued = self.hierarchy.prefetch_l1(
                    self.core, line, now, pc=instr.pc, code=True
                )
                seen.add(line)
                if issued is not None:
                    self.stats.lines_prefetched += 1
                current_line = line
            if instr.op is Op.BRANCH:
                # A direction the predictor would get wrong, or a taken
                # branch with no/stale BTB target, derails the runahead.
                predicted = self.predictor.peek(instr.pc, history)
                if predicted != instr.taken or (
                    instr.taken and self.predictor.btb_target(instr.pc) != instr.target
                ):
                    self.stats.stopped_by_branch += 1
                    return
                history = self.predictor.fold_history(history, instr.taken)
        self.stats.stopped_by_window += 1
