"""TACT-Feeder: data-association prefetching — Section IV-B1.

When no *address* association exists for a critical load, TACT looks for a
*data* association: a feeder load whose loaded value determines the target's
address via ``Address = Scale * Data + Base`` with Scale restricted to
{1, 2, 4, 8} (shift-implementable; no dividers).

Trigger identification is done with a per-architectural-register table of the
youngest load PC that (directly or transitively) produced each register: a
load writes its own PC into its destination's slot; any other instruction
propagates the youngest load PC among its sources.  The feeder of a target is
then the youngest load PC feeding any of the target's source registers.

Timeliness: the feeder itself is prefetched ahead (up to distance 4) using
its own stride; when the prefetched feeder line's *data* arrives, it triggers
the target prefetch.  In this model the "prefetched line's data" is read from
the trace's memory image — exactly the value the hardware would find in the
fetched line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...workloads.trace import NUM_ARCH_REGS

SCALES = (1, 2, 4, 8)
CONFIDENCE_MAX = 3
FEEDER_DISTANCE = 4


class RegisterLoadTracker:
    """Youngest-load-PC propagation through the architectural registers.

    ``on_load``/``on_other`` run once per simulated instruction, so the
    per-register state lives in two parallel int arrays (PC and dynamic
    index) instead of allocating a ``(pc, idx)`` tuple per update; the
    youngest entry is still selected by dynamic index alone.
    """

    __slots__ = ("_pc", "_idx")

    def __init__(self) -> None:
        self._pc = [-1] * NUM_ARCH_REGS
        self._idx = [-1] * NUM_ARCH_REGS

    def on_load(self, pc: int, idx: int, dst: int) -> None:
        if dst >= 0:
            self._pc[dst] = pc
            self._idx[dst] = idx

    def on_other(self, idx: int, srcs: tuple[int, ...], dst: int) -> None:
        if dst < 0:
            return
        pcs = self._pc
        idxs = self._idx
        best_pc = -1
        best_idx = -1
        for src in srcs:
            cand_idx = idxs[src]
            if cand_idx > best_idx:
                best_idx = cand_idx
                best_pc = pcs[src]
        pcs[dst] = best_pc
        idxs[dst] = best_idx

    def feeder_for(self, srcs: tuple[int, ...], exclude_idx: int) -> int:
        """Youngest load PC feeding any of ``srcs`` (its PC, or -1)."""
        pcs = self._pc
        idxs = self._idx
        best_pc = -1
        best_idx = -1
        for src in srcs:
            cand_idx = idxs[src]
            if cand_idx > best_idx and cand_idx != exclude_idx:
                best_idx = cand_idx
                best_pc = pcs[src]
        return best_pc


@dataclass(slots=True)
class _ScaleLearn:
    last_base: int = -1
    conf: int = 0


@dataclass(slots=True)
class FeederState:
    """Per-target feeder identification and Scale/Base learning."""

    feeder_pc: int = -1
    feeder_conf: int = 0       #: 2-bit confidence the feeder PC is stable
    confirmed: bool = False
    scales: dict[int, _ScaleLearn] = field(
        default_factory=lambda: {s: _ScaleLearn() for s in SCALES}
    )
    scale: int = 0             #: learned scale (0 = not learned)
    base: int = 0

    @property
    def learned(self) -> bool:
        return self.confirmed and self.scale != 0

    def observe_feeder_candidate(self, feeder_pc: int) -> None:
        """Train the feeder-PC confidence from one target instance."""
        if feeder_pc < 0:
            return
        if feeder_pc == self.feeder_pc:
            if self.feeder_conf < CONFIDENCE_MAX:
                self.feeder_conf += 1
                if self.feeder_conf >= CONFIDENCE_MAX:
                    self.confirmed = True
        else:
            if not self.confirmed:
                self.feeder_pc = feeder_pc
                self.feeder_conf = 0

    def observe_relation(self, target_addr: int, feeder_data: int) -> None:
        """Learn Scale/Base from one (feeder data, target address) pair."""
        if not self.confirmed or self.learned:
            return
        for s in SCALES:
            learn = self.scales[s]
            base = target_addr - s * feeder_data
            if base == learn.last_base:
                learn.conf += 1
                if learn.conf >= CONFIDENCE_MAX:
                    self.scale = s
                    self.base = base
                    return
            else:
                learn.conf = 0
                learn.last_base = base

    def predict(self, feeder_data: int) -> int | None:
        """Target address implied by a feeder data value."""
        if not self.learned:
            return None
        return self.scale * feeder_data + self.base
