"""TACT coordinator: target tracking, training, firing, timeliness stats.

Binds the four TACT prefetchers (Cross, Deep-Self, Feeder, Code) to one
core.  Training and prefetching happen only for loads tracked by the
criticality detector's 32-entry table (Section IV-B: "We only do TACT
learning and prefetching for the 32 critical loads"), which is what keeps
TACT's storage at ~1.2 KB and the L1 unpolluted.

The coordinator also implements the Figure 11 timeliness accounting: for
every TACT prefetch it records the serving level and full latency; when the
demand load later arrives it computes how much of that latency the prefetch
actually hid.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ...caches.hierarchy import AccessResult, CacheHierarchy, Level
from ...workloads.trace import LINE_SHIFT, Instr, Op
from ..criticality import CriticalityDetector
from .code import CodePrefetcher
from .cross import CrossState
from .deep_self import DeepSelfState
from .feeder import FEEDER_DISTANCE, FeederState, RegisterLoadTracker
from .trigger_cache import TriggerCache

_OP_LOAD = Op.LOAD

#: Canonical TACT component name -> the ``TACTConfig`` flag enabling it.
#: The plugin registry exposes these as the ``tact-<name>`` prefetchers.
COMPONENTS = {
    "cross": "enable_cross",
    "deep-self": "enable_deep_self",
    "feeder": "enable_feeder",
    "code": "enable_code",
}


@dataclass(frozen=True)
class TACTConfig:
    """Which TACT components are active (Figure 13 ablates these)."""

    enable_cross: bool = True
    enable_deep_self: bool = True
    enable_feeder: bool = True
    enable_code: bool = True
    max_targets: int = 32
    code_runahead_lines: int = 24
    feeder_distance: int = FEEDER_DISTANCE
    deep_max_distance: int = 16

    @classmethod
    def with_components(cls, names, **overrides) -> "TACTConfig":
        """Build a config enabling exactly the named components.

        Args:
            names: iterable of :data:`COMPONENTS` keys (``_``/``-`` and the
                ``tact-`` registry prefix are accepted).
            **overrides: any other ``TACTConfig`` field.
        """
        from ...errors import ConfigError
        from ...plugins.registry import canonical_name, suggest

        flags = {flag: False for flag in COMPONENTS.values()}
        for name in names:
            key = canonical_name(name)
            if key.startswith("tact-"):
                key = key[len("tact-"):]
            if key not in COMPONENTS:
                raise ConfigError(
                    f"unknown TACT component {name!r}; "
                    f"{suggest(key, list(COMPONENTS))}"
                )
            flags[COMPONENTS[key]] = True
        return cls(**flags, **overrides)

    def components(self) -> tuple[str, ...]:
        """Canonical names of the enabled components, in registry order."""
        return tuple(
            name for name, flag in COMPONENTS.items() if getattr(self, flag)
        )


@dataclass
class TACTStats:
    """Prefetch issue/served/timeliness counters (Figures 11 and 13)."""

    cross_prefetches: int = 0
    deep_prefetches: int = 0
    feeder_prefetches: int = 0
    code_prefetches: int = 0
    served_from: Counter = field(default_factory=Counter)
    demand_covered: int = 0      #: demand loads that met a TACT prefetch
    saved_over_80: int = 0       #: >80% of the source latency hidden
    saved_10_to_80: int = 0
    saved_under_10: int = 0

    @property
    def issued(self) -> int:
        return (
            self.cross_prefetches
            + self.deep_prefetches
            + self.feeder_prefetches
        )

    @property
    def pct_from_llc(self) -> float:
        total = sum(self.served_from.values())
        return self.served_from[Level.LLC] / total if total else 0.0

    def timeliness_fractions(self) -> dict[str, float]:
        total = self.demand_covered
        if not total:
            return {"over_80": 0.0, "mid": 0.0, "under_10": 0.0}
        return {
            "over_80": self.saved_over_80 / total,
            "mid": self.saved_10_to_80 / total,
            "under_10": self.saved_under_10 / total,
        }


@dataclass(slots=True)
class _PCHistory:
    """Recent behaviour of one load PC (trigger firing + feeder strides)."""

    last_addr: int = -1
    last_data: int = 0
    stride: int = 0
    stride_conf: int = 0

    def observe(self, addr: int, data: int) -> None:
        if self.last_addr >= 0:
            delta = addr - self.last_addr
            if delta == self.stride and delta != 0:
                self.stride_conf = min(self.stride_conf + 1, 3)
            else:
                self.stride = delta
                self.stride_conf = 0
        self.last_addr = addr
        self.last_data = data


@dataclass(slots=True)
class _TargetState:
    cross: CrossState = field(default_factory=CrossState)
    deep: DeepSelfState = field(default_factory=DeepSelfState)
    feeder: FeederState = field(default_factory=FeederState)
    lru: int = 0


class TACTCoordinator:
    """All TACT machinery for one core."""

    MAX_PC_HISTORY = 2048
    MAX_INFLIGHT = 8192

    def __init__(
        self,
        core: int,
        hierarchy: CacheHierarchy,
        detector: CriticalityDetector,
        predictor,
        config: TACTConfig | None = None,
    ) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.detector = detector
        self.config = config or TACTConfig()
        self.stats = TACTStats()
        self.trigger_cache = TriggerCache()
        self.reg_tracker = RegisterLoadTracker()
        self._tracker_on_load = self.reg_tracker.on_load
        self._tracker_on_other = self.reg_tracker.on_other
        self.code = CodePrefetcher(
            core, hierarchy, predictor, max_lines=self.config.code_runahead_lines
        )
        self._targets: dict[int, _TargetState] = {}
        self._pc_hist: dict[int, _PCHistory] = {}
        #: cross-trigger PC -> target PCs it prefetches for
        self._cross_triggers: dict[int, set[int]] = {}
        #: feeder PC -> target PCs it feeds
        self._feeders: dict[int, set[int]] = {}
        #: line -> (source level, full latency) for issued TACT prefetches
        self._inflight: dict[int, tuple[Level, float]] = {}
        self._memory_image: dict[int, int] = {}
        self._clock = 0

    # ------------------------------------------------------------- plumbing

    def set_trace(self, trace) -> None:
        self._memory_image = trace.memory_image
        self.code.set_trace(trace)

    def on_code_miss(self, idx: int, now: float, stall: float) -> None:
        if self.config.enable_code:
            self.code.on_code_miss(idx, now, stall)
            self.stats.code_prefetches = self.code.stats.lines_prefetched

    def _history(self, pc: int) -> _PCHistory:
        hist = self._pc_hist.get(pc)
        if hist is None:
            if len(self._pc_hist) >= self.MAX_PC_HISTORY:
                self._pc_hist.pop(next(iter(self._pc_hist)))
            hist = _PCHistory()
            self._pc_hist[pc] = hist
        return hist

    def _target(self, pc: int) -> _TargetState:
        state = self._targets.get(pc)
        if state is None:
            if len(self._targets) >= self.config.max_targets:
                victim_pc = min(self._targets, key=lambda p: self._targets[p].lru)
                self._drop_target(victim_pc)
            state = _TargetState()
            state.deep.max_distance = self.config.deep_max_distance
            self._targets[pc] = state
        state.lru = self._clock
        return state

    def _drop_target(self, target_pc: int) -> None:
        state = self._targets.pop(target_pc, None)
        if state is None:
            return
        for mapping in (self._cross_triggers, self._feeders):
            for targets in mapping.values():
                targets.discard(target_pc)

    # ------------------------------------------------------------ prefetch

    def _issue(self, byte_addr: int, now: float, component: str) -> None:
        line = byte_addr >> LINE_SHIFT
        outcome = self.hierarchy.prefetch_l1(self.core, line, now)
        if outcome is None:
            return  # already in L1
        level, latency = outcome
        setattr(
            self.stats,
            component,
            getattr(self.stats, component) + 1,
        )
        self.stats.served_from[level] += 1
        if len(self._inflight) >= self.MAX_INFLIGHT:
            self._inflight.pop(next(iter(self._inflight)))
        self._inflight[line] = (level, latency)

    def _record_timeliness(self, instr: Instr, result: AccessResult) -> None:
        record = self._inflight.pop(instr.line, None)
        if record is None:
            return
        level, full_latency = record
        if full_latency <= 0:
            return
        self.stats.demand_covered += 1
        paid = result.latency
        l1_lat = self.hierarchy.l1d[self.core].latency
        saved_fraction = max(0.0, (full_latency - max(paid, l1_lat)) / full_latency)
        if saved_fraction > 0.80:
            self.stats.saved_over_80 += 1
        elif saved_fraction >= 0.10:
            self.stats.saved_10_to_80 += 1
        else:
            self.stats.saved_under_10 += 1

    # -------------------------------------------------------------- hooks

    def on_load_execute(
        self, instr: Instr, idx: int, now: float, result: AccessResult
    ) -> None:
        """Main TACT hook: trains and fires on every executed load."""
        cfg = self.config
        pc = instr.pc
        addr = instr.addr
        self._clock += 1

        self._record_timeliness(instr, result)
        self.trigger_cache.observe(pc, addr)

        # ---- fire: this load is a learned CROSS trigger -------------------
        if cfg.enable_cross:
            for target_pc in self._cross_triggers.get(pc, ()):
                state = self._targets.get(target_pc)
                if state is not None:
                    predicted = state.cross.prefetch_for_trigger(addr)
                    if predicted is not None:
                        self._issue(predicted, now, "cross_prefetches")

        # ---- fire: this load FEEDS a target's address ----------------------
        if cfg.enable_feeder and pc in self._feeders:
            # The target prefetch can only launch once the feeder's *data* is
            # on hand — at ``now + latency``, when this load's line arrives.
            # (A pure pointer chase therefore gains nothing, as the paper
            # observes for namd/gromacs: the prefetch starts exactly when the
            # dependent demand would.)
            data_time = now + result.latency
            hist_self = self._pc_hist.get(pc)
            for target_pc in self._feeders.get(pc, ()):
                state = self._targets.get(target_pc)
                if state is None or not state.feeder.learned:
                    continue
                issued_deep = False
                if hist_self is not None and hist_self.stride_conf >= 2:
                    # TACT deep-prefetches the feeder itself (distance <= 4);
                    # the prefetched feeder line's data then triggers the
                    # target prefetch.  Reading the future value from the
                    # memory image is exactly reading the prefetched line.
                    future_addr = addr + hist_self.stride * cfg.feeder_distance
                    self._issue(future_addr, now, "feeder_prefetches")
                    data = self._memory_image.get(future_addr)
                    if data is not None:
                        predicted = state.feeder.predict(data)
                        if predicted is not None:
                            self._issue(predicted, data_time, "feeder_prefetches")
                            issued_deep = True
                if not issued_deep:
                    predicted = state.feeder.predict(instr.data)
                    if predicted is not None:
                        self._issue(predicted, data_time, "feeder_prefetches")

        # ---- train: this load is a critical target --------------------------
        if self.detector.is_critical(pc):
            state = self._target(pc)
            if cfg.enable_cross and not state.cross.learned:
                state.cross.refresh_candidates(
                    self.trigger_cache.candidates(addr), pc
                )
                candidate = state.cross.current_candidate()
                cand_hist = self._pc_hist.get(candidate) if candidate >= 0 else None
                state.cross.observe_target(
                    addr, cand_hist.last_addr if cand_hist else -1
                )
                if state.cross.learned:
                    self._cross_triggers.setdefault(
                        state.cross.trigger_pc, set()
                    ).add(pc)
            if cfg.enable_deep_self:
                for predicted in state.deep.observe(addr):
                    self._issue(predicted, now, "deep_prefetches")
            if cfg.enable_feeder and not state.feeder.learned:
                feeder_pc = self.reg_tracker.feeder_for(instr.srcs, idx)
                state.feeder.observe_feeder_candidate(feeder_pc)
                if state.feeder.confirmed:
                    feeder_hist = self._pc_hist.get(state.feeder.feeder_pc)
                    if feeder_hist is not None:
                        state.feeder.observe_relation(addr, feeder_hist.last_data)
                    if state.feeder.learned:
                        self._feeders.setdefault(
                            state.feeder.feeder_pc, set()
                        ).add(pc)

        # ---- history update (after training uses the *previous* values) ----
        self._history(pc).observe(addr, instr.data)

    def on_execute(self, instr: Instr, idx: int, now: float) -> None:
        """Register propagation for feeder identification (every instr)."""
        # Bound methods cached in __init__: this hook runs per instruction.
        if instr.op is _OP_LOAD:
            self._tracker_on_load(instr.pc, idx, instr.dst)
        elif instr.dst >= 0:
            self._tracker_on_other(idx, instr.srcs, instr.dst)

    # ------------------------------------------------------------- area

    @staticmethod
    def area_bytes() -> dict[str, float]:
        """Figure 9 storage accounting (~1.2 KB total)."""
        return {
            "critical_target_table": 32 * 20,   # 640 B: deep+cross+feeder state
            "feeder_pc_table": 32 * 2,          # 64 B
            "feeder_reg_tracking": 16 * 3,      # 48 B
            "trigger_cache": 64 * 6,            # 384 B
            "cross_pc_table": 64,               # 64 B
            "code_cnpip": 8,                    # 8 B
        }
