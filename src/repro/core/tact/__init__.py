"""TACT: Timeliness Aware and Criticality Triggered prefetchers."""

from .code import CodePrefetcher, CodeRunaheadStats
from .coordinator import TACTConfig, TACTCoordinator, TACTStats
from .cross import CrossState
from .deep_self import DeepSelfState
from .feeder import FeederState, RegisterLoadTracker
from .trigger_cache import TriggerCache

__all__ = [
    "CodePrefetcher",
    "CodeRunaheadStats",
    "TACTConfig",
    "TACTCoordinator",
    "TACTStats",
    "CrossState",
    "DeepSelfState",
    "FeederState",
    "RegisterLoadTracker",
    "TriggerCache",
]
