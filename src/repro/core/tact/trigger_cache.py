"""Trigger Cache for TACT-Cross — Section IV-B1.

Tracks the last 64 4 KB pages touched by loads in an 8-set x 8-way
set-associative cache indexed by the 4 KB-aligned address.  Each entry
remembers the *first four* load PCs that touched the page during its
residency; a critical target PC looks its own page up here to obtain
candidate trigger PCs (loads that lead it into the page).
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAGE_SHIFT = 12
MAX_PCS_PER_PAGE = 4


@dataclass(slots=True)
class _PageEntry:
    page: int
    pcs: list[int] = field(default_factory=list)
    lru: int = 0


class TriggerCache:
    """64-entry, 8-way set-associative cache of recently touched pages."""

    def __init__(self, sets: int = 8, ways: int = 8) -> None:
        self.num_sets = sets
        self.ways = ways
        self._sets: list[dict[int, _PageEntry]] = [{} for _ in range(sets)]
        self._clock = 0

    def _set_for(self, page: int) -> dict[int, _PageEntry]:
        return self._sets[page % self.num_sets]

    def observe(self, pc: int, addr: int) -> None:
        """Record a load touching its 4 KB page."""
        page = addr >> PAGE_SHIFT
        entries = self._set_for(page)
        self._clock += 1
        entry = entries.get(page)
        if entry is None:
            if len(entries) >= self.ways:
                victim = min(entries.values(), key=lambda e: e.lru)
                del entries[victim.page]
            entry = _PageEntry(page=page)
            entries[page] = entry
        entry.lru = self._clock
        if pc not in entry.pcs and len(entry.pcs) < MAX_PCS_PER_PAGE:
            entry.pcs.append(pc)

    def candidates(self, addr: int) -> list[int]:
        """Candidate trigger PCs for the page containing ``addr``, oldest
        first (the paper starts with the oldest of the four)."""
        page = addr >> PAGE_SHIFT
        entry = self._set_for(page).get(page)
        if entry is None:
            return []
        return list(entry.pcs)
