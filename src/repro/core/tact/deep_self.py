"""TACT-Deep-Self: deep-distance stride prefetching for critical loads.

Section IV-B1.  The baseline L1 stride prefetcher runs at distance 1, which
cannot hide an L2/LLC round trip.  For the handful of *critical* target PCs,
TACT additionally prefetches at a deep distance (capped at 16), guarded by a
learned **safe length**: the typical number of consecutive same-stride
accesses the PC produces before the stride breaks (loop exit / re-enter).
Deep prefetches are issued only up to the safe length, keeping the tiny L1
unpolluted; both the current-length and safe-length counters cap at 32, and
the safe length starts at 4 with a 2-bit confidence.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_DISTANCE = 16
LENGTH_CAP = 32
CONFIDENCE_MAX = 3

#: Shared empty result for the (overwhelmingly common) no-prefetch case, so
#: the per-critical-load hot path allocates nothing when it issues nothing.
_NO_PREFETCHES: tuple[int, ...] = ()


@dataclass(slots=True)
class DeepSelfState:
    """Per-critical-PC stride and safe-length learning state.

    ``max_distance`` is the deep prefetch-distance cap (16 in the paper;
    exposed for the ablation benchmarks).
    """

    max_distance: int = MAX_DISTANCE
    last_addr: int = -1
    stride: int = 0
    stride_conf: int = 0
    run_length: int = 0        #: current consecutive same-stride run (<=32)
    safe_length: int = 4       #: learned safe run length (<=32)
    safe_conf: int = 0         #: 2-bit confidence in the safe length

    def observe(self, addr: int) -> list[int] | tuple[int, ...]:
        """Train on a demand access; returns prefetch addresses to issue.

        The empty result is a shared immutable tuple — callers only iterate.
        """
        if self.last_addr >= 0:
            delta = addr - self.last_addr
            if delta == self.stride and delta != 0:
                self.stride_conf = min(self.stride_conf + 1, CONFIDENCE_MAX)
                if self.run_length < LENGTH_CAP:
                    self.run_length += 1
                else:
                    # Wraparound per the paper: a capped run is a completed
                    # safe run (this is how endless streams gain confidence).
                    self._update_safe_length()
                    self.run_length = 1
            else:
                # Stride broke: fold the observed run into the safe length.
                # The interval that just established the new stride is the
                # first interval of the next run, so its count restarts at 1
                # — exactly like the wraparound branch above — not at 0,
                # which under-counted every run by one interval and taught
                # the safe window one short.  A zero delta establishes no
                # stride, so it contributes no interval.  Only a *confirmed*
                # run (two or more intervals) trains the safe length: a lone
                # transition delta — e.g. the jump between two array
                # segments — is the first interval of a run that never
                # repeated, and folding it as a run of one would reset the
                # learning on every segment boundary.
                if self.run_length > 1:
                    self._update_safe_length()
                self.stride = delta
                self.stride_conf = 0
                self.run_length = 1 if delta else 0
        self.last_addr = addr
        if self.stride_conf >= 2 and self.stride != 0:
            prefetches = [addr + self.stride]  # distance 1 (baseline-like)
            if self.safe_conf >= CONFIDENCE_MAX:
                if self.safe_length >= LENGTH_CAP:
                    # Saturated safe length: the run is effectively endless
                    # (the counter caps at 32), so the full depth is safe.
                    deep = self.max_distance
                else:
                    # Stay within the remaining safe window of this run
                    # (nonpositive once the run outlives what was learned:
                    # past the safe window, deep prefetch stays off).
                    deep = min(self.max_distance, self.safe_length - self.run_length)
                if deep > 1:
                    prefetches.append(addr + self.stride * deep)
            return prefetches
        return _NO_PREFETCHES

    def _update_safe_length(self) -> None:
        """Move the safe length toward the just-observed run length."""
        observed = min(self.run_length, LENGTH_CAP)
        if observed == 0:
            return
        if observed >= self.safe_length:
            self.safe_length = min(LENGTH_CAP, max(self.safe_length + 1, observed))
            self.safe_conf = min(self.safe_conf + 1, CONFIDENCE_MAX)
        elif observed < self.safe_length // 2:
            self.safe_length = max(1, observed)
            self.safe_conf = 0
        else:
            self.safe_conf = min(self.safe_conf + 1, CONFIDENCE_MAX)
