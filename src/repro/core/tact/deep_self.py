"""TACT-Deep-Self: deep-distance stride prefetching for critical loads.

Section IV-B1.  The baseline L1 stride prefetcher runs at distance 1, which
cannot hide an L2/LLC round trip.  For the handful of *critical* target PCs,
TACT additionally prefetches at a deep distance (capped at 16), guarded by a
learned **safe length**: the typical number of consecutive same-stride
accesses the PC produces before the stride breaks (loop exit / re-enter).
Deep prefetches are issued only up to the safe length, keeping the tiny L1
unpolluted; both the current-length and safe-length counters cap at 32, and
the safe length starts at 4 with a 2-bit confidence.
"""

from __future__ import annotations

from dataclasses import dataclass

MAX_DISTANCE = 16
LENGTH_CAP = 32
CONFIDENCE_MAX = 3


@dataclass(slots=True)
class DeepSelfState:
    """Per-critical-PC stride and safe-length learning state.

    ``max_distance`` is the deep prefetch-distance cap (16 in the paper;
    exposed for the ablation benchmarks).
    """

    max_distance: int = MAX_DISTANCE
    last_addr: int = -1
    stride: int = 0
    stride_conf: int = 0
    run_length: int = 0        #: current consecutive same-stride run (<=32)
    safe_length: int = 4       #: learned safe run length (<=32)
    safe_conf: int = 0         #: 2-bit confidence in the safe length

    def observe(self, addr: int) -> list[int]:
        """Train on a demand access; returns prefetch addresses to issue."""
        prefetches: list[int] = []
        if self.last_addr >= 0:
            delta = addr - self.last_addr
            if delta == self.stride and delta != 0:
                self.stride_conf = min(self.stride_conf + 1, CONFIDENCE_MAX)
                if self.run_length < LENGTH_CAP:
                    self.run_length += 1
                else:
                    # Wraparound per the paper: a capped run is a completed
                    # safe run (this is how endless streams gain confidence).
                    self._update_safe_length()
                    self.run_length = 1
            else:
                # Stride broke: fold the observed run into the safe length.
                self._update_safe_length()
                self.stride = delta
                self.stride_conf = 0
                self.run_length = 0
        self.last_addr = addr
        if self.stride_conf >= 2 and self.stride != 0:
            prefetches.append(addr + self.stride)  # distance 1 (baseline-like)
            if self.safe_conf >= CONFIDENCE_MAX:
                if self.safe_length >= LENGTH_CAP:
                    # Saturated safe length: the run is effectively endless
                    # (the counter caps at 32), so the full depth is safe.
                    deep = self.max_distance
                else:
                    # Stay within the remaining safe window of this run.
                    deep = min(self.max_distance, self.safe_length - self.run_length)
                if deep > 1:
                    prefetches.append(addr + self.stride * deep)
        return prefetches

    def _update_safe_length(self) -> None:
        """Move the safe length toward the just-observed run length."""
        observed = min(self.run_length, LENGTH_CAP)
        if observed == 0:
            return
        if observed >= self.safe_length:
            self.safe_length = min(LENGTH_CAP, max(self.safe_length + 1, observed))
            self.safe_conf = min(self.safe_conf + 1, CONFIDENCE_MAX)
        elif observed < self.safe_length // 2:
            self.safe_length = max(1, observed)
            self.safe_conf = 0
        else:
            self.safe_conf = min(self.safe_conf + 1, CONFIDENCE_MAX)
