"""Criticality detector: buffered DDG + critical load table (Section IV-A).

This is the complete ~3 KB hardware block: the retire stream feeds the
buffered graph; every completed walk records the PCs of loads found on the
critical path *that were served by the L2 or LLC* into the critical-load
table.  TACT consults :meth:`CriticalityDetector.is_critical`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..caches.hierarchy import Level
from ..cpu.engine import RetireRecord
from .critical_table import CriticalLoadTable, table_area_bytes
from .ddg import BufferedDDG, CriticalLoad, graph_area_bytes

#: Levels whose critical hits the detector records (the whole point of CATCH
#: is accelerating loads that hit *on-die but beyond the L1*).
RECORD_LEVELS = (int(Level.L2), int(Level.LLC))


class CriticalityDetector:
    """Hardware criticality detection, composed per core.

    Args:
        rob_size: core ROB depth (sizes the buffered graph).
        table_entries: critical table capacity (32 in the paper).
        record_levels: serving levels that qualify a critical load for the
            table.  The oracle studies override this (e.g. record L1 hits).
        rename_latency: D-E edge weight, matching the core.
    """

    def __init__(
        self,
        rob_size: int = 224,
        table_entries: int = 32,
        record_levels: tuple[int, ...] = RECORD_LEVELS,
        rename_latency: int = 1,
        epoch_instructions: int = 100_000,
        table_policy: str = "lru",
    ) -> None:
        self.table = CriticalLoadTable(
            entries=table_entries,
            ways=min(8, table_entries),
            epoch_instructions=epoch_instructions,
            policy=table_policy,
        )
        self.record_levels = record_levels
        self.graph = BufferedDDG(
            rob_size=rob_size,
            rename_latency=rename_latency,
            on_walk=self._record_walk,
        )
        #: Cumulative critical observations per PC (oracle ranking input).
        self.critical_pc_counts: Counter[int] = Counter()

    def _record_walk(self, found: list[CriticalLoad]) -> None:
        for load in found:
            self.critical_pc_counts[load.pc] += 1
            if load.level in self.record_levels:
                self.table.observe_critical(load.pc)

    # ------------------------------------------------------------- interface

    def on_retire(self, record: RetireRecord) -> None:
        """Feed one retired instruction (call in retire order)."""
        self.graph.add(record)
        self.table.tick_retire()

    def is_critical(self, pc: int) -> bool:
        return self.table.is_critical(pc)

    def is_tracked(self, pc: int) -> bool:
        return self.table.is_tracked(pc)

    def top_critical_pcs(self, n: int) -> list[int]:
        """The ``n`` most frequently critical PCs (oracle studies, Fig 5)."""
        return [pc for pc, _ in self.critical_pc_counts.most_common(n)]


@dataclass(frozen=True)
class DetectorArea:
    """Area summary reproducing the paper's ~3 KB claim (Table I)."""

    graph_bytes: float
    pc_bytes: float
    table_bytes: float

    @property
    def total_kb(self) -> float:
        return (self.graph_bytes + self.pc_bytes + self.table_bytes) / 1024


def detector_area(rob_size: int = 224, table_entries: int = 32) -> DetectorArea:
    g = graph_area_bytes(rob_size)
    return DetectorArea(
        graph_bytes=g["graph_bytes"],
        pc_bytes=g["pc_bytes"],
        table_bytes=table_area_bytes(table_entries),
    )
