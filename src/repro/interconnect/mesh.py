"""2D mesh interconnect model (the scale-out case of Section VI-E).

The paper's power discussion is explicit: the two-level CATCH hierarchy wins
energy on a small ring, "however, this would not be true for large core count
processors that would use a complex MESH as an interconnect.  For such
hierarchies ... an L2 may still be needed for primarily reducing the
interconnect traffic."

This mesh model provides the hop counts and per-hop energy needed to evaluate
that claim (see ``experiments/interconnect_scaling.py``): cores and LLC
slices are interleaved over an ``n x n`` grid with XY routing, so average hop
distance grows with sqrt(cores) instead of staying ~constant as on a 4-core
ring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .ring import RingStats


class MeshInterconnect:
    """Square 2D mesh with XY dimension-order routing.

    Stops 0..n_cores-1 are core tiles, the rest LLC slices; tiles are laid
    out row-major over the smallest square grid that fits them.  The API
    mirrors :class:`~repro.interconnect.ring.RingInterconnect` so either can
    back a hierarchy.
    """

    def __init__(
        self,
        n_cores: int,
        n_slices: int | None = None,
        hop_cycles: int = 1,
        flits_per_data: int = 4,
    ) -> None:
        self.n_cores = n_cores
        self.n_slices = n_slices if n_slices is not None else n_cores
        self.hop_cycles = hop_cycles
        self.flits_per_data = flits_per_data
        self.n_stops = self.n_cores + self.n_slices
        self.side = math.ceil(math.sqrt(self.n_stops))
        self.stats = RingStats()

    # -- topology -----------------------------------------------------------

    def _coords(self, stop: int) -> tuple[int, int]:
        return stop % self.side, stop // self.side

    def slice_for(self, line_addr: int) -> int:
        return line_addr % self.n_slices

    def hops(self, core: int, slice_id: int) -> int:
        """Manhattan (XY-routed) distance between a core and a slice tile."""
        x0, y0 = self._coords(core)
        x1, y1 = self._coords(self.n_cores + slice_id)
        return abs(x1 - x0) + abs(y1 - y0)

    def mean_hops(self) -> float:
        """Average core->slice distance (grows ~ sqrt(n_stops))."""
        total = sum(
            self.hops(c, s) for c in range(self.n_cores) for s in range(self.n_slices)
        )
        return total / (self.n_cores * self.n_slices)

    # -- traffic ---------------------------------------------------------------

    def request(self, core: int, line_addr: int) -> int:
        h = self.hops(core, self.slice_for(line_addr))
        self.stats.messages += 1
        self.stats.control_messages += 1
        self.stats.flit_hops += h
        return h * self.hop_cycles

    def data(self, core: int, line_addr: int) -> int:
        h = self.hops(core, self.slice_for(line_addr))
        self.stats.messages += 1
        self.stats.data_messages += 1
        self.stats.flit_hops += h * self.flits_per_data
        return h * self.hop_cycles

    def round_trip(self, core: int, line_addr: int) -> int:
        return self.request(core, line_addr) + self.data(core, line_addr)
