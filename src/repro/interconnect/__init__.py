"""On-die interconnect substrate: ring and mesh models with traffic accounting."""

from .mesh import MeshInterconnect
from .ring import RingInterconnect, RingStats

__all__ = ["MeshInterconnect", "RingInterconnect", "RingStats"]
