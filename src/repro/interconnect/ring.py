"""On-die ring interconnect model.

The paper's power analysis (Section VI-E) hinges on interconnect traffic: a
two-level CATCH hierarchy sends every L1 miss across the ring to the LLC
(~5x the baseline's interconnect traffic) but saves cache and DRAM energy.
This module counts ring crossings and hop-distance so the Orion-style energy
model (``repro.power.orion``) can price them, and provides the latency the
hierarchy folds into the LLC round trip.

Topology: core agents 0..n-1 and LLC slices interleaved on a bidirectional
ring, Skylake client style.  A message takes the shorter direction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class RingStats:
    messages: int = 0
    data_messages: int = 0     #: messages carrying a 64B line
    control_messages: int = 0  #: requests/acks (8B)
    flit_hops: int = 0         #: total flits x hops traversed (energy proxy)

    @property
    def bytes_moved(self) -> int:
        return self.data_messages * 64 + self.control_messages * 8


class RingInterconnect:
    """Bidirectional ring connecting cores to LLC slices.

    Args:
        n_cores: number of core agents.
        n_slices: number of LLC slices (defaults to ``n_cores``).
        hop_cycles: per-hop latency in cycles.
        flits_per_data: flits in a 64B data message.
    """

    def __init__(
        self,
        n_cores: int,
        n_slices: int | None = None,
        hop_cycles: int = 1,
        flits_per_data: int = 4,
    ) -> None:
        self.n_cores = n_cores
        self.n_slices = n_slices if n_slices is not None else n_cores
        self.hop_cycles = hop_cycles
        self.flits_per_data = flits_per_data
        self.n_stops = self.n_cores + self.n_slices
        self.stats = RingStats()

    def slice_for(self, line_addr: int) -> int:
        """LLC slice owning a line (address-hashed interleaving)."""
        return line_addr % self.n_slices

    def hops(self, core: int, slice_id: int) -> int:
        """Shorter-direction hop count between a core stop and a slice stop."""
        src = core
        dst = self.n_cores + slice_id
        distance = abs(dst - src)
        return min(distance, self.n_stops - distance)

    def request(self, core: int, line_addr: int) -> int:
        """Send a control request core->slice; returns latency in cycles."""
        h = self.hops(core, self.slice_for(line_addr))
        self.stats.messages += 1
        self.stats.control_messages += 1
        self.stats.flit_hops += h
        return h * self.hop_cycles

    def data(self, core: int, line_addr: int) -> int:
        """Move one 64B line between a core and its slice; returns latency."""
        h = self.hops(core, self.slice_for(line_addr))
        self.stats.messages += 1
        self.stats.data_messages += 1
        self.stats.flit_hops += h * self.flits_per_data
        return h * self.hop_cycles

    def round_trip(self, core: int, line_addr: int) -> int:
        """Request + data response latency for an LLC access."""
        return self.request(core, line_addr) + self.data(core, line_addr)
