"""Out-of-order core substrate: DDG timing model, front end, branch predictor."""

from .branch import BranchStats, GshareBranchPredictor
from .core import CoreParams, CoreResult, OOOCore
from .engine import Engine, RetireRecord
from .frontend import FrontEnd

__all__ = [
    "BranchStats",
    "GshareBranchPredictor",
    "CoreParams",
    "CoreResult",
    "OOOCore",
    "Engine",
    "RetireRecord",
    "FrontEnd",
]
