"""Branch prediction: gshare direction predictor plus a simple BTB.

Branch mispredictions are one of the three creators of critical paths the
paper identifies (LLC misses, mispredicts, long dependence chains), so the
core models them explicitly: the trace supplies the true outcome, this
predictor supplies the guess, and a wrong guess inserts the E-D
bad-speculation edge into the timing graph.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class BranchStats:
    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class GshareBranchPredictor:
    """Gshare: global history XOR PC indexing a table of 2-bit counters.

    Args:
        history_bits: global history register length and table index width.
        btb_entries: capacity of the branch target buffer.
    """

    def __init__(self, history_bits: int = 14, btb_entries: int = 4096) -> None:
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._counters = bytearray([1] * (1 << history_bits))
        self._history = 0
        self._btb: dict[int, int] = {}
        self._btb_entries = btb_entries
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    @property
    def history(self) -> int:
        """Current global history register (runahead seeds from this)."""
        return self._history

    def would_predict(self, pc: int) -> bool:
        """Direction prediction without updating any state (runahead use)."""
        return self._counters[self._index(pc)] >= 2

    def peek(self, pc: int, history: int) -> bool:
        """Direction prediction under a caller-supplied history (the CNPIP
        runahead queries the predictor with its own speculative history)."""
        return self._counters[((pc >> 2) ^ history) & self._mask] >= 2

    def btb_target(self, pc: int) -> int | None:
        """BTB lookup without training (runahead needs targets to proceed)."""
        return self._btb.get(pc)

    def fold_history(self, history: int, taken: bool) -> int:
        """Advance a speculative history register by one outcome."""
        return ((history << 1) | int(taken)) & self._mask

    def predict_and_update(self, pc: int, taken: bool, target: int) -> bool:
        """Predict the branch, then train; returns ``True`` on mispredict.

        A branch mispredicts when the direction guess is wrong, or when it is
        taken and the BTB has no (or a stale) target.
        """
        self.stats.branches += 1
        idx = self._index(pc)
        predicted_taken = self._counters[idx] >= 2
        btb_target = self._btb.get(pc)

        mispredict = predicted_taken != taken
        if taken and not mispredict and btb_target != target:
            self.stats.btb_misses += 1
            mispredict = True
        if mispredict:
            self.stats.mispredicts += 1

        # Train the direction counter and history.
        if taken:
            if self._counters[idx] < 3:
                self._counters[idx] += 1
        else:
            if self._counters[idx] > 0:
                self._counters[idx] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._mask

        # Train the BTB.
        if taken:
            if pc not in self._btb and len(self._btb) >= self._btb_entries:
                self._btb.pop(next(iter(self._btb)))
            self._btb[pc] = target
        return mispredict
