"""Out-of-order core timing model, evaluated as the Fields et al. DDG.

The paper analyses (and our reproduction times) the machine through the data
dependency graph of Fields et al. [1]: every instruction has a Dispatch (D),
Execute (E) and Commit (C) node, and edges

* D-D (in-order allocation, bounded by dispatch width),
* C-D (ROB depth: instruction *i* cannot allocate until *i - ROB* commits),
* D-E (rename latency),
* E-E (register and memory data dependences, weighted by producer latency),
* E-C (execution latency), C-C (in-order commit, bounded by commit width),
* E-D (bad speculation: a mispredicted branch redirects fetch).

This module computes those node times exactly, instruction by instruction, in
program order.  Load execution latencies come from the cache hierarchy *at
the load's execute time*, so prefetch timeliness, DRAM bank state and
in-flight fills all shape the graph.  Total cycles = the last C node.

This is deliberately the same graph the CATCH criticality detector
(``repro.core.ddg``) rebuilds "in hardware" from the retire stream — detected
critical paths are true critical paths of this machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..caches.hierarchy import CacheHierarchy, Level
from ..caches.prefetchers import L1StridePrefetcher, L2StreamPrefetcher
from ..workloads.trace import EXEC_LATENCY, NUM_ARCH_REGS, Instr, Op, Trace
from .branch import GshareBranchPredictor
from .engine import Engine, RetireRecord
from .frontend import FrontEnd


@dataclass(frozen=True)
class CoreParams:
    """Microarchitecture parameters (Skylake-like, Section V)."""

    rob_size: int = 224
    width: int = 4              #: dispatch and commit width
    rename_latency: int = 1
    mispredict_penalty: int = 15  #: front-end refill after a bad branch
    enable_l1_stride: bool = True
    enable_l2_stream: bool = True


@dataclass
class CoreResult:
    """Outcome of running one trace on one core."""

    instructions: int
    cycles: float
    load_levels: dict[Level, int] = field(default_factory=dict)
    branch_mispredicts: int = 0
    code_stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OOOCore:
    """One out-of-order core bound to a shared cache hierarchy.

    Args:
        core_id: index of this core in the hierarchy.
        hierarchy: shared :class:`CacheHierarchy`.
        params: microarchitectural parameters.
        engine: criticality/prefetch engine (CATCH, oracle, or no-op).
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: CacheHierarchy,
        params: CoreParams | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.params = params or CoreParams()
        self.engine = engine or Engine()
        self.frontend = FrontEnd(core_id, hierarchy, self.params.width)
        self.predictor = GshareBranchPredictor()
        self.stride_pf = (
            L1StridePrefetcher(core_id, hierarchy)
            if self.params.enable_l1_stride
            else None
        )
        self.stream_pf = (
            L2StreamPrefetcher(core_id, hierarchy)
            if self.params.enable_l2_stream
            else None
        )
        obs.metrics().register_provider(
            f"core.core{core_id}", self._telemetry_snapshot
        )
        self._reset_run_state()

    def _telemetry_snapshot(self) -> dict:
        """Core-side counters for the metrics registry."""
        return {
            "instructions_stepped": len(self._e_time),
            "mispredicts": self._mispredicts,
            "code_stall_cycles": self.frontend.code_stall_cycles,
            "code_misses": self.frontend.code_misses,
            "time": self._last_c,
        }

    def _reset_run_state(self) -> None:
        p = self.params
        self._e_time: list[float] = []
        self._lat: list[float] = []
        self._c_ring = [0.0] * p.rob_size  # C times of the last ROB_SIZE instrs
        self._reg_writer = [-1] * NUM_ARCH_REGS
        self._mem_writer: dict[int, int] = {}
        self._last_d = 0.0
        self._last_c = 0.0
        self._d_cycle = -1
        self._d_count = 0
        self._c_cycle = -1
        self._c_count = 0
        self._redirect = 0.0
        self._mispredicts = 0

    # ------------------------------------------------------------------ run

    @property
    def time(self) -> float:
        """Commit time of the most recently stepped instruction."""
        return self._last_c

    @property
    def mispredicts(self) -> int:
        return self._mispredicts

    def start(self, trace: Trace) -> None:
        """Reset timing state and bind the engine for a manual step() run."""
        self._reset_run_state()
        self.engine.attach(self.core_id, self)
        self.engine.set_trace(trace)

    def reset_stats(self) -> None:
        """Zero core-side counters (not timing state) at a sample boundary."""
        self._mispredicts = 0
        self.frontend.code_stall_cycles = 0.0
        self.frontend.code_misses = 0
        self.predictor.stats = type(self.predictor.stats)()
        if self.stride_pf is not None:
            self.stride_pf.issued = 0
        if self.stream_pf is not None:
            self.stream_pf.issued = 0

    def run(self, trace: Trace, limit: int | None = None) -> CoreResult:
        """Execute the trace to completion; returns timing results."""
        self.start(trace)
        instrs = trace.instrs if limit is None else trace.instrs[:limit]
        step = self.step
        for idx, instr in enumerate(instrs):
            step(idx, instr)
        return self.finish(len(instrs))

    def step(self, idx: int, instr: Instr) -> float:
        """Advance one instruction through D/E/C; returns its commit time.

        Exposed separately from :meth:`run` so the multi-core driver can
        interleave cores by timestamp.
        """
        p = self.params
        # ---- Dispatch (D node) ------------------------------------------
        fetch_ready = self.frontend.fetch_time(
            idx, instr, max(self._last_d, self._redirect)
        )
        d = max(self._last_d, fetch_ready, self._redirect)
        if idx >= p.rob_size:
            d = max(d, self._c_ring[idx % p.rob_size])  # C-D edge (ROB full)
        cyc = int(d)
        if cyc == self._d_cycle:
            if self._d_count >= p.width:
                cyc += 1
                d = float(cyc)
                self._d_cycle = cyc
                self._d_count = 1
            else:
                self._d_count += 1
        else:
            self._d_cycle = cyc
            self._d_count = 1
        self._last_d = d

        # ---- Execute (E node) --------------------------------------------
        e = d + p.rename_latency
        producers: list[int] = []
        for src in instr.srcs:
            widx = self._reg_writer[src]
            if widx >= 0:
                producers.append(widx)
                t = self._e_time[widx] + self._lat[widx]
                if t > e:
                    e = t
        if instr.op is Op.LOAD:
            sidx = self._mem_writer.get(instr.addr, -1)
            if sidx >= 0:
                producers.append(sidx)
                t = self._e_time[sidx] + self._lat[sidx]
                if t > e:
                    e = t

        # ---- Execution latency --------------------------------------------
        level: Level | None = None
        mispredicted = False
        if instr.op is Op.LOAD:
            self.engine.before_load(instr, idx, e)
            result = self.hierarchy.load(self.core_id, instr.pc, instr.line, e)
            lat = result.latency
            level = result.level
            if self.stride_pf is not None:
                self.stride_pf.train(instr.pc, instr.addr, e)
            if level is not Level.L1 and self.stream_pf is not None:
                self.stream_pf.train(instr.line, e)
            self.engine.after_load(instr, idx, e, result)
        elif instr.op is Op.STORE:
            lat = float(EXEC_LATENCY[Op.STORE])
            self.hierarchy.store(self.core_id, instr.pc, instr.line, e)
            self._mem_writer[instr.addr] = idx
        elif instr.op is Op.BRANCH:
            lat = float(EXEC_LATENCY[Op.BRANCH])
            mispredicted = self.predictor.predict_and_update(
                instr.pc, instr.taken, instr.target
            )
            if mispredicted:
                self._mispredicts += 1
                resume = e + lat + p.mispredict_penalty  # E-D edge
                self._redirect = max(self._redirect, resume)
                self.frontend.redirect(resume)
        else:
            lat = float(EXEC_LATENCY[instr.op])

        self.engine.on_execute(instr, idx, e)
        if instr.dst >= 0:
            self._reg_writer[instr.dst] = idx
        self._e_time.append(e)
        self._lat.append(lat)

        # ---- Commit (C node) ----------------------------------------------
        c = max(e + lat, self._last_c)
        cyc = int(c)
        if cyc == self._c_cycle:
            if self._c_count >= p.width:
                cyc += 1
                c = float(cyc)
                self._c_cycle = cyc
                self._c_count = 1
            else:
                self._c_count += 1
        else:
            self._c_cycle = cyc
            self._c_count = 1
        self._last_c = c
        self._c_ring[idx % p.rob_size] = c

        self.engine.on_retire(
            RetireRecord(
                idx=idx,
                instr=instr,
                exec_lat=lat,
                producers=tuple(producers),
                level=level,
                mispredicted=mispredicted,
                e_time=e,
            )
        )
        return c

    def finish(self, n_instructions: int) -> CoreResult:
        """Collect results after the last instruction has stepped."""
        self.hierarchy.memory.finish(self._last_c)
        stats = self.hierarchy.stats[self.core_id]
        return CoreResult(
            instructions=n_instructions,
            cycles=self._last_c,
            load_levels=dict(stats.load_served),
            branch_mispredicts=self._mispredicts,
            code_stall_cycles=self.frontend.code_stall_cycles,
        )
