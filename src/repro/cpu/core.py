"""Out-of-order core timing model, evaluated as the Fields et al. DDG.

The paper analyses (and our reproduction times) the machine through the data
dependency graph of Fields et al. [1]: every instruction has a Dispatch (D),
Execute (E) and Commit (C) node, and edges

* D-D (in-order allocation, bounded by dispatch width),
* C-D (ROB depth: instruction *i* cannot allocate until *i - ROB* commits),
* D-E (rename latency),
* E-E (register and memory data dependences, weighted by producer latency),
* E-C (execution latency), C-C (in-order commit, bounded by commit width),
* E-D (bad speculation: a mispredicted branch redirects fetch).

This module computes those node times exactly, instruction by instruction, in
program order.  Load execution latencies come from the cache hierarchy *at
the load's execute time*, so prefetch timeliness, DRAM bank state and
in-flight fills all shape the graph.  Total cycles = the last C node.

This is deliberately the same graph the CATCH criticality detector
(``repro.core.ddg``) rebuilds "in hardware" from the retire stream — detected
critical paths are true critical paths of this machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..caches.hierarchy import CacheHierarchy, Level
from ..caches.prefetchers import L1StridePrefetcher, L2StreamPrefetcher
from ..workloads.trace import (
    EXEC_LATENCY,
    LINE_SHIFT,
    NUM_ARCH_REGS,
    Instr,
    Op,
    Trace,
)
from .branch import GshareBranchPredictor
from .engine import Engine, RetireRecord
from .frontend import FrontEnd

#: Retired-instruction stride between deadline polls in :meth:`OOOCore.run_span`.
#: Matches the runner's ``Deadline``, which ignores every index that is not a
#: multiple of its own check interval — so polling only on these strides is
#: observationally identical to the seed's per-instruction polling.
DEADLINE_POLL_STRIDE = 256


@dataclass(frozen=True)
class CoreParams:
    """Microarchitecture parameters (Skylake-like, Section V)."""

    rob_size: int = 224
    width: int = 4              #: dispatch and commit width
    rename_latency: int = 1
    mispredict_penalty: int = 15  #: front-end refill after a bad branch
    enable_l1_stride: bool = True
    enable_l2_stream: bool = True


@dataclass
class CoreResult:
    """Outcome of running one trace on one core."""

    instructions: int
    cycles: float
    load_levels: dict[Level, int] = field(default_factory=dict)
    branch_mispredicts: int = 0
    code_stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def _fold_trainers(trainers):
    """Collapse a trainer list to one call target for the kernel hot loops.

    ``None`` when empty and the single bound method when there is exactly
    one (the default composition), so the common case dispatches with the
    same cost as the pre-registry hard-wired call; only genuinely stacked
    prefetchers pay for a fan-out closure.
    """
    if not trainers:
        return None
    if len(trainers) == 1:
        return trainers[0]
    folded = tuple(trainers)

    def train_all(*args, _trainers=folded):
        for train in _trainers:
            train(*args)

    return train_all


class OOOCore:
    """One out-of-order core bound to a shared cache hierarchy.

    Args:
        core_id: index of this core in the hierarchy.
        hierarchy: shared :class:`CacheHierarchy`.
        params: microarchitectural parameters.
        engine: criticality/prefetch engine (CATCH, oracle, or no-op).
        prefetchers: core-side prefetcher factories, each called as
            ``factory(core_id, hierarchy)`` (see
            :data:`repro.plugins.prefetchers.PREFETCHERS`).  ``None`` builds
            the legacy pair from the ``CoreParams`` enable flags — identical
            to what :func:`repro.plugins.compose.core_prefetcher_factories`
            derives for a default config.
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: CacheHierarchy,
        params: CoreParams | None = None,
        engine: Engine | None = None,
        prefetchers=None,
    ) -> None:
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.params = params or CoreParams()
        self.engine = engine or Engine()
        self.frontend = FrontEnd(core_id, hierarchy, self.params.width)
        self.predictor = GshareBranchPredictor()
        if prefetchers is None:
            built = []
            if self.params.enable_l1_stride:
                built.append(L1StridePrefetcher(core_id, hierarchy))
            if self.params.enable_l2_stream:
                built.append(L2StreamPrefetcher(core_id, hierarchy))
        else:
            built = [factory(core_id, hierarchy) for factory in prefetchers]
        self.prefetchers = built
        # Named aliases kept for the components other code reaches into
        # (TACT-Deep-Self extends the stride mechanism; tests assert on both).
        self.stride_pf = next(
            (p for p in built if isinstance(p, L1StridePrefetcher)), None
        )
        self.stream_pf = next(
            (p for p in built if isinstance(p, L2StreamPrefetcher)), None
        )
        self._train_load = _fold_trainers(
            [p.train for p in built if p.TRAIN_ON == "load"]
        )
        self._train_miss = _fold_trainers(
            [p.train for p in built if p.TRAIN_ON == "miss"]
        )
        obs.metrics().register_provider(
            f"core.core{core_id}", self._telemetry_snapshot
        )
        self._reset_run_state()

    def _telemetry_snapshot(self) -> dict:
        """Core-side counters for the metrics registry."""
        return {
            "instructions_stepped": len(self._e_time),
            "mispredicts": self._mispredicts,
            "code_stall_cycles": self.frontend.code_stall_cycles,
            "code_misses": self.frontend.code_misses,
            "time": self._last_c,
        }

    def _reset_run_state(self) -> None:
        p = self.params
        self._e_time: list[float] = []
        self._lat: list[float] = []
        self._c_ring = [0.0] * p.rob_size  # C times of the last ROB_SIZE instrs
        self._reg_writer = [-1] * NUM_ARCH_REGS
        self._mem_writer: dict[int, int] = {}
        self._last_d = 0.0
        self._last_c = 0.0
        self._d_cycle = -1
        self._d_count = 0
        self._c_cycle = -1
        self._c_count = 0
        self._redirect = 0.0
        self._mispredicts = 0

    # ------------------------------------------------------------------ run

    @property
    def time(self) -> float:
        """Commit time of the most recently stepped instruction."""
        return self._last_c

    @property
    def mispredicts(self) -> int:
        return self._mispredicts

    def start(self, trace: Trace) -> None:
        """Reset timing state and bind the engine for a manual step() run."""
        self._reset_run_state()
        self.engine.attach(self.core_id, self)
        self.engine.set_trace(trace)

    def reset_stats(self) -> None:
        """Zero core-side counters (not timing state) at a sample boundary."""
        self._mispredicts = 0
        self.frontend.code_stall_cycles = 0.0
        self.frontend.code_misses = 0
        self.predictor.stats = type(self.predictor.stats)()
        for prefetcher in self.prefetchers:
            prefetcher.issued = 0

    def run(self, trace: Trace, limit: int | None = None) -> CoreResult:
        """Execute the trace to completion; returns timing results."""
        self.start(trace)
        instrs = trace.instrs if limit is None else trace.instrs[:limit]
        step = self.step
        for idx, instr in enumerate(instrs):
            step(idx, instr)
        return self.finish(len(instrs))

    def step(self, idx: int, instr: Instr) -> float:
        """Advance one instruction through D/E/C; returns its commit time.

        Exposed separately from :meth:`run` so the multi-core driver can
        interleave cores by timestamp.
        """
        p = self.params
        # ---- Dispatch (D node) ------------------------------------------
        fetch_ready = self.frontend.fetch_time(
            idx, instr, max(self._last_d, self._redirect)
        )
        d = max(self._last_d, fetch_ready, self._redirect)
        if idx >= p.rob_size:
            d = max(d, self._c_ring[idx % p.rob_size])  # C-D edge (ROB full)
        cyc = int(d)
        if cyc == self._d_cycle:
            if self._d_count >= p.width:
                cyc += 1
                d = float(cyc)
                self._d_cycle = cyc
                self._d_count = 1
            else:
                self._d_count += 1
        else:
            self._d_cycle = cyc
            self._d_count = 1
        self._last_d = d

        # ---- Execute (E node) --------------------------------------------
        e = d + p.rename_latency
        producers: list[int] = []
        for src in instr.srcs:
            widx = self._reg_writer[src]
            if widx >= 0:
                producers.append(widx)
                t = self._e_time[widx] + self._lat[widx]
                if t > e:
                    e = t
        if instr.op is Op.LOAD:
            sidx = self._mem_writer.get(instr.addr, -1)
            if sidx >= 0:
                producers.append(sidx)
                t = self._e_time[sidx] + self._lat[sidx]
                if t > e:
                    e = t

        # ---- Execution latency --------------------------------------------
        level: Level | None = None
        mispredicted = False
        if instr.op is Op.LOAD:
            self.engine.before_load(instr, idx, e)
            result = self.hierarchy.load(self.core_id, instr.pc, instr.line, e)
            lat = result.latency
            level = result.level
            if self._train_load is not None:
                self._train_load(instr.pc, instr.addr, e)
            if level is not Level.L1 and self._train_miss is not None:
                self._train_miss(instr.line, e)
            self.engine.after_load(instr, idx, e, result)
        elif instr.op is Op.STORE:
            lat = float(EXEC_LATENCY[Op.STORE])
            self.hierarchy.store(self.core_id, instr.pc, instr.line, e)
            self._mem_writer[instr.addr] = idx
        elif instr.op is Op.BRANCH:
            lat = float(EXEC_LATENCY[Op.BRANCH])
            mispredicted = self.predictor.predict_and_update(
                instr.pc, instr.taken, instr.target
            )
            if mispredicted:
                self._mispredicts += 1
                resume = e + lat + p.mispredict_penalty  # E-D edge
                self._redirect = max(self._redirect, resume)
                self.frontend.redirect(resume)
        else:
            lat = float(EXEC_LATENCY[instr.op])

        self.engine.on_execute(instr, idx, e)
        if instr.dst >= 0:
            self._reg_writer[instr.dst] = idx
        self._e_time.append(e)
        self._lat.append(lat)

        # ---- Commit (C node) ----------------------------------------------
        c = max(e + lat, self._last_c)
        cyc = int(c)
        if cyc == self._c_cycle:
            if self._c_count >= p.width:
                cyc += 1
                c = float(cyc)
                self._c_cycle = cyc
                self._c_count = 1
            else:
                self._c_count += 1
        else:
            self._c_cycle = cyc
            self._c_count = 1
        self._last_c = c
        self._c_ring[idx % p.rob_size] = c

        self.engine.on_retire(
            RetireRecord(
                idx=idx,
                instr=instr,
                exec_lat=lat,
                producers=tuple(producers),
                level=level,
                mispredicted=mispredicted,
                e_time=e,
            )
        )
        return c

    def run_span(
        self,
        instrs,
        start_idx: int,
        *,
        on_instruction=None,
        deadline=None,
    ) -> int:
        """Step a span of instructions through the optimized kernel loop.

        Semantically identical to calling :meth:`step` once per instruction
        (that per-instruction loop remains the *reference kernel* guarded by
        ``tests/test_golden_parity.py``), but with every attribute, bound
        method and constant hoisted out of the loop, engine hooks that are
        still the :class:`Engine` no-ops skipped entirely (including the
        :class:`RetireRecord` allocation when nothing consumes it), and the
        deadline polled every :data:`DEADLINE_POLL_STRIDE` instructions —
        the stride the runner's ``Deadline`` checks anyway.

        ``on_instruction`` stays per-instruction: fault injection raises at
        an exact index and the fleet heartbeat rides it.

        Timing state is written back even when a hook raises (``finally``),
        so an aborted run leaves the core exactly where :meth:`step` would.
        Engines must not read core timing state mid-span (none do; the
        reference kernel remains available for engines that need to).

        Args:
            instrs: the instructions to step, in program order.
            start_idx: dynamic index of the first instruction in ``instrs``.

        Returns:
            The dynamic index after the last stepped instruction.
        """
        p = self.params
        rob_size = p.rob_size
        width = p.width
        rename_latency = p.rename_latency
        mispredict_penalty = p.mispredict_penalty
        core_id = self.core_id

        e_time = self._e_time
        lat_arr = self._lat
        e_append = e_time.append
        lat_append = lat_arr.append
        c_ring = self._c_ring
        reg_writer = self._reg_writer
        mem_writer = self._mem_writer
        mem_writer_get = mem_writer.get

        last_d = self._last_d
        last_c = self._last_c
        d_cycle = self._d_cycle
        d_count = self._d_count
        c_cycle = self._c_cycle
        c_count = self._c_count
        redirect = self._redirect
        mispredicts = self._mispredicts

        frontend = self.frontend
        fetch_time = frontend.fetch_time
        frontend_redirect = frontend.redirect
        hier_load = self.hierarchy.load
        hier_store = self.hierarchy.store
        predict_and_update = self.predictor.predict_and_update
        train_load = self._train_load
        train_miss = self._train_miss

        # An engine hook is "live" only if it is not the Engine base-class
        # no-op.  Instance-attribute hooks (no ``__func__``) are conservatively
        # treated as live, so monkeypatched engines keep working.
        engine = self.engine

        def _live(name: str):
            hook = getattr(engine, name)
            if getattr(hook, "__func__", None) is getattr(Engine, name):
                return None
            return hook

        before_load = _live("before_load")
        after_load = _live("after_load")
        on_execute = _live("on_execute")
        on_retire = _live("on_retire")

        op_load = Op.LOAD
        op_store = Op.STORE
        op_branch = Op.BRANCH
        level_l1 = Level.L1
        exec_lat = {op: float(lat) for op, lat in EXEC_LATENCY.items()}
        store_lat = exec_lat[op_store]
        branch_lat = exec_lat[op_branch]
        line_shift = LINE_SHIFT
        poll = DEADLINE_POLL_STRIDE

        idx = start_idx
        producers: list[int] = []
        try:
            for instr in instrs:
                # ---- Dispatch (D node) ----------------------------------
                pipeline_time = last_d if last_d >= redirect else redirect
                fetch_ready = fetch_time(idx, instr, pipeline_time)
                d = last_d
                if fetch_ready > d:
                    d = fetch_ready
                if redirect > d:
                    d = redirect
                ring_pos = idx % rob_size
                if idx >= rob_size:
                    cd = c_ring[ring_pos]  # C-D edge (ROB full)
                    if cd > d:
                        d = cd
                cyc = int(d)
                if cyc == d_cycle:
                    if d_count >= width:
                        cyc += 1
                        d = float(cyc)
                        d_cycle = cyc
                        d_count = 1
                    else:
                        d_count += 1
                else:
                    d_cycle = cyc
                    d_count = 1
                last_d = d

                # ---- Execute (E node) -----------------------------------
                e = d + rename_latency
                op = instr.op
                if on_retire is not None:
                    producers = []
                    for src in instr.srcs:
                        widx = reg_writer[src]
                        if widx >= 0:
                            producers.append(widx)
                            t = e_time[widx] + lat_arr[widx]
                            if t > e:
                                e = t
                    if op is op_load:
                        sidx = mem_writer_get(instr.addr, -1)
                        if sidx >= 0:
                            producers.append(sidx)
                            t = e_time[sidx] + lat_arr[sidx]
                            if t > e:
                                e = t
                else:
                    for src in instr.srcs:
                        widx = reg_writer[src]
                        if widx >= 0:
                            t = e_time[widx] + lat_arr[widx]
                            if t > e:
                                e = t
                    if op is op_load:
                        sidx = mem_writer_get(instr.addr, -1)
                        if sidx >= 0:
                            t = e_time[sidx] + lat_arr[sidx]
                            if t > e:
                                e = t

                # ---- Execution latency ----------------------------------
                level = None
                mispredicted = False
                if op is op_load:
                    addr = instr.addr
                    line = addr >> line_shift if addr >= 0 else -1
                    if before_load is not None:
                        before_load(instr, idx, e)
                    result = hier_load(core_id, instr.pc, line, e)
                    lat = result.latency
                    level = result.level
                    if train_load is not None:
                        train_load(instr.pc, addr, e)
                    if level is not level_l1 and train_miss is not None:
                        train_miss(line, e)
                    if after_load is not None:
                        after_load(instr, idx, e, result)
                elif op is op_store:
                    lat = store_lat
                    addr = instr.addr
                    line = addr >> line_shift if addr >= 0 else -1
                    hier_store(core_id, instr.pc, line, e)
                    mem_writer[addr] = idx
                elif op is op_branch:
                    lat = branch_lat
                    mispredicted = predict_and_update(
                        instr.pc, instr.taken, instr.target
                    )
                    if mispredicted:
                        mispredicts += 1
                        resume = e + lat + mispredict_penalty  # E-D edge
                        if resume > redirect:
                            redirect = resume
                        frontend_redirect(resume)
                else:
                    lat = exec_lat[op]

                if on_execute is not None:
                    on_execute(instr, idx, e)
                dst = instr.dst
                if dst >= 0:
                    reg_writer[dst] = idx
                e_append(e)
                lat_append(lat)

                # ---- Commit (C node) ------------------------------------
                c = e + lat
                if last_c > c:
                    c = last_c
                cyc = int(c)
                if cyc == c_cycle:
                    if c_count >= width:
                        cyc += 1
                        c = float(cyc)
                        c_cycle = cyc
                        c_count = 1
                    else:
                        c_count += 1
                else:
                    c_cycle = cyc
                    c_count = 1
                last_c = c
                c_ring[ring_pos] = c

                if on_retire is not None:
                    on_retire(
                        RetireRecord(
                            idx=idx,
                            instr=instr,
                            exec_lat=lat,
                            producers=tuple(producers),
                            level=level,
                            mispredicted=mispredicted,
                            e_time=e,
                        )
                    )
                idx += 1
                if on_instruction is not None:
                    on_instruction(idx)
                if deadline is not None and not idx % poll:
                    deadline(idx)
        finally:
            self._last_d = last_d
            self._last_c = last_c
            self._d_cycle = d_cycle
            self._d_count = d_count
            self._c_cycle = c_cycle
            self._c_count = c_count
            self._redirect = redirect
            self._mispredicts = mispredicts
        return idx

    def finish(self, n_instructions: int) -> CoreResult:
        """Collect results after the last instruction has stepped."""
        self.hierarchy.memory.finish(self._last_c)
        stats = self.hierarchy.stats[self.core_id]
        return CoreResult(
            instructions=n_instructions,
            cycles=self._last_c,
            load_levels=dict(stats.load_served),
            branch_mispredicts=self._mispredicts,
            code_stall_cycles=self.frontend.code_stall_cycles,
        )
