"""In-order front end: next-instruction-pointer logic and the code L1 path.

The front end fetches instruction bytes through the code L1.  Sequential
fetch within a cache line is pipelined and free; a code L1 miss stalls the
whole in-order front end for the miss latency, exactly the behaviour
TACT-Code attacks (Section IV-B2).  A branch mispredict redirects fetch and
charges the machine's refill penalty on top of the resolving branch's
execute time (the DDG's E-D edge).

The front end exposes an ``on_code_miss`` callback so TACT-Code can run its
CNPIP runahead during the stall window.
"""

from __future__ import annotations

from typing import Callable

from ..caches.hierarchy import CacheHierarchy, Level
from ..workloads.trace import LINE_SHIFT, Instr


class FrontEnd:
    """Per-core fetch timing model.

    Args:
        core: core id.
        hierarchy: shared cache hierarchy (provides ``code_fetch``).
        fetch_width: instructions fetched per cycle (matches dispatch width).
    """

    def __init__(self, core: int, hierarchy: CacheHierarchy, fetch_width: int = 4) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.fetch_width = fetch_width
        self._current_line = -1
        self._ready = 0.0          #: time the next fetch may complete
        self.code_stall_cycles = 0.0
        self.code_misses = 0
        #: Oracle mode (Fig 5 study): all code fetches hit the L1I for free.
        self.perfect_code = False
        #: Optional hook: ``(instr_idx, now, stall_cycles)`` on code L1 miss.
        self.on_code_miss: Callable[[int, float, float], None] | None = None

    def redirect(self, resume_time: float) -> None:
        """Branch mispredict: fetch restarts at ``resume_time``."""
        self._ready = max(self._ready, resume_time)
        self._current_line = -1  # redirect refetches the target line

    def fetch_time(self, idx: int, instr: Instr, pipeline_time: float) -> float:
        """Earliest dispatch time for instruction ``idx`` due to the front end.

        Args:
            idx: dynamic instruction index.
            instr: the instruction being fetched.
            pipeline_time: the back end's current in-order dispatch time; code
                accesses are timed against it (fetch runs just ahead of
                dispatch in a balanced pipeline).
        """
        ready = self._ready
        t = ready if ready >= pipeline_time else pipeline_time
        if self.perfect_code:
            self._ready = t
            return t
        line = instr.pc >> LINE_SHIFT  # Instr.code_line, sans property call
        if line != self._current_line:
            hierarchy = self.hierarchy
            result = hierarchy.code_fetch(self.core, line, t)
            # Baseline next-line instruction prefetch (standard in modern
            # front ends): sequential fetch within a block never stalls twice.
            hierarchy.prefetch_l1(self.core, line + 1, t, code=True)
            self._current_line = line
            hit_lat = hierarchy.l1i[self.core].latency
            if result.level is not Level.L1:
                stall = result.latency
            elif result.inflight:
                # Racing an in-flight fill: only the residual beyond the
                # pipelined hit latency stalls the front end.
                stall = max(0.0, result.latency - hit_lat)
            else:
                stall = 0.0
            if stall > 0.0:
                self.code_misses += 1
                self.code_stall_cycles += stall
                if self.on_code_miss is not None:
                    self.on_code_miss(idx, t, stall)
                t += stall
        self._ready = t
        return t
