"""Hook interface between the OOO core and criticality/prefetch engines.

The core is engine-agnostic: CATCH (``repro.core.catch_engine``), the oracle
prefetcher (``repro.core.oracle``) and the do-nothing default all implement
this interface.  Keeping the base class in the ``cpu`` package avoids an
import cycle (``repro.core`` builds on ``repro.cpu``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..caches.hierarchy import AccessResult, Level
from ..workloads.trace import Instr


@dataclass(slots=True)
class RetireRecord:
    """Everything the criticality hardware sees about a retired instruction.

    Attributes:
        idx: dynamic instruction index (graph node id).
        instr: the instruction.
        exec_lat: actual execution latency in cycles (E-C edge weight).
        producers: dynamic indices of E-E edge sources (register and memory
            dependences), at most 3 register sources + 1 memory source.
        level: serving cache level for loads, else ``None``.
        mispredicted: branch mispredicted (creates the E-D edge).
        e_time: execute-node time (for prefetch timeliness accounting).
    """

    idx: int
    instr: Instr
    exec_lat: float
    producers: tuple[int, ...]
    level: Level | None
    mispredicted: bool
    e_time: float


class Engine:
    """Default no-op engine; subclasses override the hooks they need."""

    def attach(self, core_id: int, core) -> None:
        """Called once before simulation with the owning :class:`OOOCore`."""

    def set_trace(self, trace) -> None:
        """Called with the trace about to run (memory image, code runahead)."""

    def reset_stats(self) -> None:
        """Zero engine counters at a warmup/measurement boundary."""

    def before_load(self, instr: Instr, idx: int, now: float) -> None:
        """Called when a load reaches execute, before the cache access.

        Oracle prefetchers use this to perform their zero-time L1 fill.
        """

    def after_load(
        self, instr: Instr, idx: int, now: float, result: AccessResult
    ) -> None:
        """Called after the cache access with its outcome (TACT training)."""

    def on_execute(self, instr: Instr, idx: int, now: float) -> None:
        """Called for every instruction at execute (register propagation)."""

    def on_retire(self, record: RetireRecord) -> None:
        """Called in order at retirement (feeds the criticality detector)."""

    def on_code_miss(self, idx: int, now: float, stall: float) -> None:
        """Called when the front end stalls on a code L1 miss (TACT-Code)."""
